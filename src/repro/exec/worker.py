"""The generic child-process entrypoint for every pool.

:func:`exec_worker_main` is the one ``Process(target=...)`` the runtime
spawns, in two modes:

- ``"oneshot"`` — run a single job handler and exit (the racing
  portfolio engine).  A SIGTERM from the parent's staged termination is
  converted into :class:`WorkerTerminated` (traced runs only), so even a
  cancelled loser posts its partial span timeline during the
  terminate-grace window.  Every exit path posts exactly one message.
- ``"loop"`` — stay resident, pulling jobs off an inbox queue until the
  ``None`` sentinel (warm serve and cube workers).  Per-job failures are
  reported and survived; a flight recorder ships job milestones
  incrementally on every result so the parent's ring stays current even
  if the process is SIGKILLed next.

The *policy* lives in the handler the parent passes in: a callable
``handler(payload, ctx) -> message`` that adopts its inputs through
``ctx.registry``, runs the domain work, and returns the reply dict
(bulky parts under the ``"_sideband"`` key — the runtime ships them out
of band).  The handler must be a module-level function so it pickles
under the ``spawn`` start method.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from typing import Callable, Dict, Optional

from repro.obs import (
    FlightRecorder,
    FlightRecorderHandler,
    Tracer,
    get_logger,
    set_tracer,
)
from repro.shm import SegmentRegistry, set_active_registry, shm_available

from repro.exec.transport import attach_sideband, post_message


class WorkerTerminated(BaseException):
    """Raised inside a worker when the parent's SIGTERM lands.

    Derives from ``BaseException`` so engine code cannot swallow it with
    a broad ``except Exception``.
    """


def _raise_worker_terminated(signum, frame) -> None:
    raise WorkerTerminated()


class WorkerContext:
    """What a job handler sees of the runtime inside the child process.

    ``resident`` is the handler's scratch dict surviving across jobs of
    a loop-mode worker — the serve policy keeps per-tenant caches,
    pattern pools and cost models in it, which is the whole point of a
    warm worker.
    """

    __slots__ = ("index", "registry", "tracer", "recorder", "resident")

    def __init__(
        self,
        index: int,
        registry: Optional[SegmentRegistry] = None,
        tracer: Optional[Tracer] = None,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        self.index = index
        self.registry = registry
        self.tracer = tracer
        self.recorder = recorder
        self.resident: Dict = {}


def _join_registry(index: int, cfg: Dict) -> Optional[SegmentRegistry]:
    """Join the run's shared-memory plane, if the parent opened one.

    Segments this worker creates are stamped with the *parent's* pid:
    the parent registry is the reaper, so another daemon's orphan sweep
    must key liveness off the parent, not the worker.  The worker never
    unlinks anything — which is what makes a SIGKILL at any point here
    leak-free.
    """
    token = cfg.get("shm_token")
    if token is None or not shm_available():
        return None
    run_pid = cfg.get("run_pid")
    return SegmentRegistry(
        token=token,
        suffix=f"w{index}",
        owner_pid=run_pid if run_pid is not None else os.getppid(),
    )


def exec_worker_main(
    index: int,
    mode: str,
    handler: Callable[[Dict, WorkerContext], Dict],
    inbox,
    result_queue,
    cfg: Dict,
) -> None:
    """Child-process body shared by all pools (see module docstring).

    ``inbox`` is the job payload itself in one-shot mode and an
    ``mp.Queue`` of payloads in loop mode.  ``cfg`` keys: ``trace``
    (record a span timeline), ``trace_name`` (tracer process name,
    defaults to ``worker:{index}``), ``shm_token``/``run_pid`` (join the
    parent's segment registry), ``spill_path`` (where a one-shot result
    goes if the queue is already torn down), ``flight``/
    ``flight_capacity`` (loop mode: per-worker flight recorder).
    """
    tracer: Optional[Tracer] = None
    if cfg.get("trace"):
        tracer = Tracer(
            process_name=cfg.get("trace_name") or f"worker:{index}"
        )
        set_tracer(tracer)
    registry = _join_registry(index, cfg)
    if registry is not None:
        set_active_registry(registry)
    ctx = WorkerContext(index, registry=registry, tracer=tracer)
    try:
        if mode == "oneshot":
            _run_oneshot(handler, inbox, result_queue, ctx, cfg)
        else:
            _run_loop(handler, inbox, result_queue, ctx, cfg)
    finally:
        if registry is not None:
            set_active_registry(None)
            registry.close()
        try:
            # The result is out: a SIGTERM landing while the interpreter
            # flushes queue feeder threads at exit must not re-raise
            # WorkerTerminated inside the finalizers.
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def _run_oneshot(
    handler, payload: Dict, queue, ctx: WorkerContext, cfg: Dict
) -> None:
    """Run one job and post exactly one message on every exit path."""
    start = time.perf_counter()
    spill_path = cfg.get("spill_path")
    if ctx.tracer is not None:
        try:
            signal.signal(signal.SIGTERM, _raise_worker_terminated)
        except (ValueError, OSError):
            pass  # non-main thread or unsupported platform: spans on
            # normal completion still ship, cancelled ones are lost
    try:
        message = handler(payload, ctx)
        sideband = message.pop("_sideband", {})
    except WorkerTerminated:
        message = {"status": "terminated"}
        sideband = {}
    except BaseException as error:  # surface crashes as structured data
        message = {
            "status": "error",
            "message": repr(error),
            "traceback": traceback.format_exc(),
        }
        sideband = {}
    message["index"] = ctx.index
    message.setdefault("seconds", time.perf_counter() - start)
    if ctx.tracer is not None:
        sideband["trace"] = ctx.tracer.export_payload()
    attach_sideband(message, sideband, ctx.registry)
    post_message(queue, message, spill_path)


def _run_loop(
    handler, inbox, result_queue, ctx: WorkerContext, cfg: Dict
) -> None:
    """Serve jobs until the ``None`` sentinel; survive per-job failures."""
    recorder: Optional[FlightRecorder] = None
    flight_handler = None
    if cfg.get("flight"):
        recorder = FlightRecorder(capacity=cfg.get("flight_capacity", 128))
        ctx.recorder = recorder
        flight_handler = FlightRecorderHandler(recorder)
        get_logger().addHandler(flight_handler)
    jobs_done = 0
    try:
        while True:
            message = inbox.get()
            if message is None:
                break
            job_id = message.get("job")
            started = time.perf_counter()
            if recorder is not None:
                recorder.record(
                    "job", "start", job=job_id, **(message.get("meta") or {})
                )
            try:
                reply = handler(message, ctx)
                reply["kind"] = "result"
                reply["job"] = job_id
                reply["index"] = ctx.index
                reply.setdefault(
                    "seconds", time.perf_counter() - started
                )
                if recorder is not None:
                    recorder.record(
                        "job",
                        "done",
                        job=job_id,
                        status=reply.get("status"),
                        seconds=round(reply["seconds"], 6),
                    )
                    reply["flight"] = recorder.take_new()
                result_queue.put(reply)
                jobs_done += 1
            except Exception as error:
                if recorder is not None:
                    recorder.record(
                        "job", "error", job=job_id, error=repr(error)
                    )
                reply = {
                    "kind": "result",
                    "job": job_id,
                    "index": ctx.index,
                    "status": "error",
                    "error": repr(error),
                    "seconds": time.perf_counter() - started,
                }
                if recorder is not None:
                    reply["flight"] = recorder.take_new()
                result_queue.put(reply)
    finally:
        bye = {"kind": "bye", "index": ctx.index, "jobs_done": jobs_done}
        if recorder is not None:
            bye["flight"] = recorder.take_new()
        if ctx.tracer is not None:
            bye["trace"] = ctx.tracer.export_payload()
        if flight_handler is not None:
            get_logger().removeHandler(flight_handler)
        try:
            result_queue.put(bye)
        except BaseException:
            pass
