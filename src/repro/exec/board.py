"""A parent-side work-stealing job backlog.

Loop-mode pools used to push every job straight onto a worker's inbox
queue at submit time, which made two things impossible: cancelling a
queued job without killing the worker it was bound to, and letting an
idle worker pick up a job queued on a busy sibling.  The
:class:`JobBoard` fixes both by keeping the backlog in the parent — a
job commits to a worker's inbox only when that worker goes idle, so

- revoking a cancelled job (a losing cube whose sibling already won) is
  a free list removal, never a kill;
- an idle worker first drains its own affinity queue, then the shared
  queue, then *steals from the tail* of the longest sibling queue, so a
  burst of submissions to one worker spreads across the pool.

The board is plain single-threaded bookkeeping: the pools drive it from
their one polling thread, so no locking is needed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.exec.cancel import CancelToken


class BoardJob:
    """One queued unit of work: an opaque payload plus scheduling tags."""

    __slots__ = ("job_id", "payload", "token", "affinity")

    def __init__(
        self,
        job_id: int,
        payload: Dict,
        token: Optional[CancelToken] = None,
        affinity: Optional[int] = None,
    ) -> None:
        self.job_id = job_id
        self.payload = payload
        self.token = token
        #: Preferred worker index (load-balance hint, not a pin — any
        #: idle worker may steal this job).
        self.affinity = affinity

    @property
    def cancelled(self) -> bool:
        return self.token is not None and self.token.cancelled

    def __repr__(self) -> str:
        return f"BoardJob({self.job_id}, affinity={self.affinity})"


class JobBoard:
    """Per-worker affinity queues plus a shared overflow queue."""

    def __init__(self) -> None:
        self._queues: Dict[int, Deque[BoardJob]] = {}
        self._shared: Deque[BoardJob] = deque()

    def __len__(self) -> int:
        return len(self._shared) + sum(
            len(q) for q in self._queues.values()
        )

    def add(
        self,
        job_id: int,
        payload: Dict,
        token: Optional[CancelToken] = None,
        affinity: Optional[int] = None,
    ) -> BoardJob:
        """Queue a job, on a worker's affinity queue or the shared one."""
        job = BoardJob(job_id, payload, token=token, affinity=affinity)
        if affinity is None:
            self._shared.append(job)
        else:
            self._queues.setdefault(affinity, deque()).append(job)
        return job

    def queued_for(self, worker_index: int) -> int:
        """Backlog length credited to one worker (its affinity queue)."""
        queue = self._queues.get(worker_index)
        return len(queue) if queue is not None else 0

    def take(self, worker_index: int) -> Optional[BoardJob]:
        """Claim the next job for an idle worker.

        Own affinity queue head first, then the shared queue head, then
        the *tail* of the longest sibling queue (stealing from the tail
        keeps the victim's head — the job it will run next — intact).
        Cancelled jobs encountered along the way are discarded, never
        returned.
        """
        own = self._queues.get(worker_index)
        while own:
            job = own.popleft()
            if not job.cancelled:
                return job
        while self._shared:
            job = self._shared.popleft()
            if not job.cancelled:
                return job
        victim: Optional[Deque[BoardJob]] = None
        for index, queue in self._queues.items():
            if index == worker_index or not queue:
                continue
            if victim is None or len(queue) > len(victim):
                victim = queue
        while victim:
            job = victim.pop()
            if not job.cancelled:
                return job
        return None

    def revoke_cancelled(self) -> List[BoardJob]:
        """Drop every queued job whose token is cancelled; return them.

        This is the cheap half of first-winner cancellation: losers
        still on the board never cost a kill, only this sweep.
        """
        revoked: List[BoardJob] = []
        for queue in list(self._queues.values()) + [self._shared]:
            keep = [job for job in queue if not job.cancelled]
            if len(keep) != len(queue):
                revoked.extend(job for job in queue if job.cancelled)
                queue.clear()
                queue.extend(keep)
        return revoked
