"""Cancellation tokens with normalised reasons, and first-winner groups.

Every kill an orchestrator performs has a *why*: the worker blew a
budget ("timeout") or another sibling won the race ("cancelled").  The
old pools passed the why around as ad-hoc strings and not every path
spelled it the same way, so downstream records (``EngineRunRecord``,
``EngineFailure.reason``) saw "timed out" here and "deadline" there.
A :class:`CancelToken` makes the reason a first-class, normalised value
stamped once at cancellation time; :class:`CancelGroup` implements the
cube lane's first-winner protocol — the first conclusive sibling
cancels every other token of the group.
"""

from __future__ import annotations

from typing import List, Optional

#: Canonical reason: a sibling produced the answer first.
REASON_CANCELLED = "cancelled"
#: Canonical reason: a wall-clock budget (per-engine or global) expired.
REASON_TIMEOUT = "timeout"


def normalize_reason(
    reason: Optional[str], default: str = REASON_CANCELLED
) -> str:
    """Map a free-form kill reason onto one of the canonical strings.

    Anything that smells like a clock ("timeout", "timed out",
    "deadline exceeded", "budget") normalises to
    :data:`REASON_TIMEOUT`; anything that smells like losing a race
    ("cancelled", "canceled", "winner", "lost") to
    :data:`REASON_CANCELLED`; unknown strings take ``default``.
    """
    if not reason:
        return default
    text = str(reason).strip().lower().replace("_", " ").replace("-", " ")
    if text in (REASON_TIMEOUT, REASON_CANCELLED):
        return text
    if (
        "timeout" in text
        or "timed out" in text
        or "deadline" in text
        or "budget" in text
        or "overtime" in text
    ):
        return REASON_TIMEOUT
    if "cancel" in text or "winner" in text or "lost" in text:
        return REASON_CANCELLED
    return default


class CancelToken:
    """One worker's (or job's) cancellation state.

    The first :meth:`cancel` wins: later calls with a different reason
    do not overwrite the recorded one, so a worker killed for a timeout
    that is then swept up in a winner-cancellation pass still reports
    "timeout".
    """

    __slots__ = ("name", "_reason")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._reason: Optional[str] = None

    @property
    def cancelled(self) -> bool:
        return self._reason is not None

    @property
    def reason(self) -> str:
        """The normalised cancellation reason ("" while not cancelled)."""
        return self._reason or ""

    def cancel(self, reason: Optional[str] = None) -> str:
        """Cancel (idempotent); returns the recorded canonical reason."""
        if self._reason is None:
            self._reason = normalize_reason(reason)
        return self._reason

    def __repr__(self) -> str:
        state = self._reason or "live"
        return f"CancelToken({self.name!r}, {state})"


class CancelGroup:
    """A set of sibling tokens with first-winner cancellation.

    The cube fan-out races sibling jobs (the cubes plus a monolithic
    solve of the undecomposed problem); whichever sibling first reaches
    a conclusive answer calls :meth:`cancel_rest` and every loser —
    queued or running — is marked cancelled.  Queued losers are revoked
    off the :class:`~repro.exec.board.JobBoard` for free; running ones
    go through the staged SIGTERM → SIGKILL stop path.
    """

    def __init__(self) -> None:
        self.tokens: List[CancelToken] = []
        self.winner: Optional[CancelToken] = None

    def new_token(self, name: str = "") -> CancelToken:
        token = CancelToken(name)
        self.tokens.append(token)
        return token

    def add(self, token: CancelToken) -> CancelToken:
        self.tokens.append(token)
        return token

    def cancel_rest(
        self,
        winner: Optional[CancelToken] = None,
        reason: str = REASON_CANCELLED,
    ) -> List[CancelToken]:
        """Cancel every token except ``winner``; returns the newly
        cancelled ones (already-cancelled tokens are not re-counted)."""
        if winner is not None:
            self.winner = winner
        losers: List[CancelToken] = []
        for token in self.tokens:
            if token is winner or token.cancelled:
                continue
            token.cancel(reason)
            losers.append(token)
        return losers

    @property
    def cancelled_count(self) -> int:
        return sum(1 for t in self.tokens if t.cancelled)
