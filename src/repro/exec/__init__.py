"""The generic job runtime under every process pool (``repro.exec``).

Before this layer existed, the parallel portfolio and the serve daemon
had independently re-grown the same worker-lifecycle machinery: spawn,
staged SIGTERM → SIGKILL termination, warm respawn, shm publish → adopt
→ release, trace/flight-ring merging, late-message spill drains.  The
cube-and-conquer fan-out (ROADMAP item 3) would have forced a third
copy.  ``repro.exec`` is the one implementation all three ride on:

- :mod:`repro.exec.cancel` — cancellation tokens with normalised reason
  strings ("timeout" vs "cancelled") and first-winner cancel groups;
- :mod:`repro.exec.transport` — shm-backed job/result transport:
  residues and sidebands as segments, queue-teardown spill files,
  parent-side reference resolution;
- :mod:`repro.exec.worker` — the child-process entrypoint, in one-shot
  (racing portfolio engine) and loop-forever (warm serve/cube worker)
  modes, with SIGTERM→exception conversion and flight recording;
- :mod:`repro.exec.runtime` — the parent side: registry lifecycle,
  spawn/stop/respawn, bounded polling, unified result absorption;
- :mod:`repro.exec.board` — a parent-side work-stealing job backlog
  (jobs commit to a worker only when it goes idle, so cancelling a
  queued job never costs a kill).

Policies (:class:`~repro.portfolio.parallel.ParallelPortfolioChecker`,
:class:`~repro.serve.pool.WorkerPool`,
:class:`~repro.cubes.runner.CubeRunner`) own *what* to run and how to
score it; this layer owns *how* processes live and die.
"""

from repro.exec.board import BoardJob, JobBoard
from repro.exec.cancel import (
    REASON_CANCELLED,
    REASON_TIMEOUT,
    CancelGroup,
    CancelToken,
    normalize_reason,
)
from repro.exec.runtime import (
    SHM_ENV,
    START_METHOD_ENV,
    ExecRuntime,
    WorkerHandle,
    resolve_start_method,
    resolve_use_shm,
    stop_process_staged,
)
from repro.exec.transport import (
    attach_sideband,
    collect_spilled_messages,
    pack_residue,
    pool_from_adoption,
    post_message,
    unpack_message,
)
from repro.exec.worker import WorkerContext, WorkerTerminated, exec_worker_main

__all__ = [
    "BoardJob",
    "CancelGroup",
    "CancelToken",
    "ExecRuntime",
    "JobBoard",
    "REASON_CANCELLED",
    "REASON_TIMEOUT",
    "SHM_ENV",
    "START_METHOD_ENV",
    "WorkerContext",
    "WorkerHandle",
    "WorkerTerminated",
    "attach_sideband",
    "collect_spilled_messages",
    "exec_worker_main",
    "normalize_reason",
    "pack_residue",
    "pool_from_adoption",
    "post_message",
    "resolve_start_method",
    "resolve_use_shm",
    "stop_process_staged",
    "unpack_message",
]
