"""Shm-backed job/result transport shared by every process pool.

Messages between a pool parent and its workers are small dicts; the big
payloads (miters, residues, carried :class:`~repro.sweep.state.SweepState`
arrays, pickled report/trace/cache sidebands) ride :mod:`repro.shm`
segments whenever a registry is available, and fall back to the pickled
queue layout otherwise.  The parent-side inverse
(:func:`unpack_message`) resolves the references back into domain
objects under the legacy keys, so policy code sees one message layout
regardless of the plane.

A worker whose result queue is already torn down (parent killed
mid-grace) spills its message to a per-worker file instead of dropping
it; :func:`collect_spilled_messages` is the parent-side sweep.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, Iterator, Optional

from repro.obs import get_tracer
from repro.shm import adopt_aig
from repro.sweep.classes import SharedPool
from repro.sweep.engine import CecResult, CecStatus
from repro.sweep.state import SweepState


def pool_from_adoption(adoption) -> Optional[SharedPool]:
    """Rebuild the shared pool from an adopted miter segment, if present.

    The pool words stay a read-only view of the segment — safe because
    :meth:`~repro.sweep.classes.SimulationState.add_cex_patterns`
    replaces the matrix wholesale instead of writing it in place.
    """
    words = adoption.arrays.get("pi_words")
    info = adoption.meta.get("pool")
    if words is None or not info:
        return None
    try:
        return SharedPool(
            pi_words=words,
            num_pis=int(adoption.meta["num_pis"]),
            num_random_words=int(info["num_random_words"]),
            seed=int(info["seed"]),
            strategy=str(info["strategy"]),
            num_cex=int(info.get("num_cex", 0)),
        )
    except (KeyError, TypeError, ValueError):
        return None


def stamp_pool(arrays: Dict, meta: Dict, pool: Optional[SharedPool]) -> None:
    """Attach a pattern pool to a miter segment's arrays/meta in place."""
    if pool is None:
        return
    arrays["pi_words"] = pool.pi_words
    meta["pool"] = {
        "num_random_words": pool.num_random_words,
        "seed": pool.seed,
        "strategy": pool.strategy,
        "num_cex": pool.num_cex,
    }


def pack_residue(message: Dict, result: CecResult, registry) -> None:
    """Attach an UNDECIDED result's residue to the outbound message.

    On the data plane the residue is published as a segment — together
    with the engine's carried :class:`SweepState` when the state still
    owns that residue, so the parent (and the SAT finisher after it) can
    adopt signatures, pattern pool and origin map without re-simulating.
    Without a registry (or if publishing fails) the residue rides the
    queue pickled, as it always has.
    """
    from repro.shm import aig_shm_arrays

    residue = result.reduced_miter
    if residue is None or result.status is not CecStatus.UNDECIDED:
        return
    if registry is not None:
        state = result.sim_state
        try:
            if isinstance(state, SweepState) and state.matches(residue):
                arrays, meta = state.to_shm_arrays()
            else:
                arrays, meta = aig_shm_arrays(residue)
            message["state_ref"] = registry.publish(arrays=arrays, meta=meta)
            return
        except Exception:
            pass  # segment allocation failed: fall back to pickling
    message["residue"] = residue


def attach_sideband(message: Dict, sideband: Dict, registry) -> None:
    """Ship the bulky message parts (report/trace/cache) out of band.

    On the data plane the sideband is pickled once into a blob segment
    and the message carries only its descriptor; otherwise the entries
    are inlined into the queue message (the legacy layout — the parent
    accepts both).
    """
    if not sideband:
        return
    if registry is not None:
        try:
            blob = pickle.dumps(sideband, protocol=pickle.HIGHEST_PROTOCOL)
            message["sideband_ref"] = registry.publish(blob=blob)
            return
        except Exception:
            pass  # fall back to the inline layout
    message.update(sideband)


def post_message(queue, message: Dict, spill_path: Optional[str]) -> None:
    """Post a worker message; spill it to disk when the queue is gone.

    A cancelled loser can reach this after the parent's queue is already
    torn down (e.g. the parent process itself was killed mid-grace).
    The message — span buffer and cache delta included — is then written
    to the per-worker spill file the parent collects in its late-message
    drain, instead of being silently dropped.
    """
    try:
        queue.put(message)
        return
    except BaseException:
        pass
    if spill_path is None:
        return
    try:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        staging = spill_path + ".tmp"
        with open(staging, "wb") as handle:
            handle.write(payload)
        os.replace(staging, spill_path)
    except Exception:
        pass  # no queue and no spill target: the message is lost


def unpack_message(message: Dict, registry) -> Dict:
    """Resolve a message's segment references into domain objects.

    On the data plane a worker message carries descriptors instead of
    payloads: ``sideband_ref`` (pickled report/trace/cache blob) and
    ``state_ref`` (residue arrays, optionally a full carried
    :class:`SweepState`).  Both are adopted here — the state by mapping,
    not copying — and folded back into the message under the legacy
    keys, so everything downstream sees one layout.  Traced runs also
    account the message's queue-borne size under ``ipc.bytes_pickled``.
    """
    tracer = get_tracer()
    if tracer.enabled:
        try:
            tracer.metrics.counter_add(
                "ipc.bytes_pickled",
                len(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)),
            )
        except Exception:
            pass
    ref = message.pop("sideband_ref", None)
    if ref is not None and registry is not None:
        try:
            adoption = registry.adopt(ref)
            sideband = pickle.loads(adoption.blob.tobytes())
            registry.release(adoption)
            message.update(sideband)
        except Exception:
            pass  # worker died mid-publish: sideband is lost
    ref = message.pop("state_ref", None)
    if ref is not None and registry is not None:
        try:
            adoption = registry.adopt(ref)
            if ref.meta.get("kind") == "sweep_state":
                sweep = SweepState.attach(adoption.arrays, ref.meta)
                message["residue"] = sweep.network()
                message["sim_state"] = sweep
            else:
                message["residue"] = adopt_aig(adoption)
        except Exception:
            pass  # worker died mid-publish: residue is lost
    return message


def collect_spilled_messages(spill_dir: Optional[str]) -> Iterator[Dict]:
    """Yield the messages workers spilled to disk (see post_message)."""
    if spill_dir is None:
        return
    try:
        names = sorted(os.listdir(spill_dir))
    except OSError:
        return
    for name in names:
        if not name.endswith(".msg"):
            continue
        try:
            with open(os.path.join(spill_dir, name), "rb") as handle:
                message = pickle.load(handle)
        except Exception:
            continue  # truncated or foreign file: skip it
        if isinstance(message, dict):
            yield message
