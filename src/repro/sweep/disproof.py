"""Random-pattern miter disproof.

Shared by every sweeping-style checker: if the current pattern pool
already sets some miter PO to 1, the circuits are nonequivalent and the
witnessing pattern is extracted directly from the pool — no prover call
needed.  This is the cheapest possible disproof and always runs before
any exhaustive/SAT/BDD work.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.aig.literals import CONST0
from repro.aig.network import Aig


def find_po_disproof(
    miter: Aig, pi_words: np.ndarray, tables: np.ndarray
) -> Optional[List[int]]:
    """Return a PI pattern satisfying some miter PO, or None.

    ``tables`` must be the simulation of ``miter`` under ``pi_words``
    (same word layout).
    """
    for po in miter.pos:
        if po == CONST0:
            continue
        row = tables[po >> 1]
        if po & 1:
            row = ~row
        nonzero = np.nonzero(row)[0]
        if nonzero.size == 0:
            continue
        word = int(nonzero[0])
        bits = int(row[word])
        bit = (bits & -bits).bit_length() - 1
        return [
            int((int(pi_words[i, word]) >> bit) & 1)
            for i in range(miter.num_pis)
        ]
    return None
