"""Incremental sweep state: knowledge carried across miter reductions.

Historically every reduction of the miter threw away all derived
knowledge: the engine re-simulated the whole reduced network, re-built
equivalence classes from zero-width signatures and re-fingerprinted
every cone for the knowledge cache — an O(phases × miter size) tax paid
in interpreted Python, exactly in the repeated-L-phase regime where the
paper spends its time.

:class:`SweepState` owns the live miter plus everything the phases
derive from it, and *carries* that knowledge through each reduction
instead of rebuilding it:

- the **signature matrix** of the pattern pool: proved merges are exact
  equivalences, so a surviving node computes the same function before
  and after the rebuild and its signature row is carried by a pure
  gather; only newly appended pattern columns are ever simulated;
- the current :class:`~repro.sweep.classes.EquivalenceClasses`, remapped
  through the old→new literal map when the pool has not changed;
- the **fingerprint salt** and memoised truth tables of the functional
  knowledge cache, so NPN lookups and proofs survive reductions without
  re-simulating or re-evaluating cones;
- a vectorised union-find over the *original* miter's nodes
  (:attr:`origin_literals`), composing every rebuild's literal map so
  any original node can be traced to its current representative;
- the pattern pool itself (a :class:`~repro.sweep.classes.SimulationState`).

The structural invariant is bit-exactness: :meth:`network` after any
sequence of :meth:`apply_merges`/:meth:`set_pos` calls is structurally
identical to what the historical rebuild-from-scratch path produces, and
the carried signature matrix equals a fresh full re-simulation of the
reduced miter.  ``tests/test_sweep_state.py`` enforces both invariants
on hundreds of seeded random cases; ``docs/sweep-state.md`` explains
why they hold.

Observability: every rebuild emits a ``rebuild`` span and every carry or
re-simulation a ``carryover`` span (category ``state``), with
``state.carried_words`` / ``state.recomputed_words`` /
``state.initial_words`` counters distinguishing gathered signature words
from freshly simulated ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aig.literals import lit
from repro.aig.network import Aig
from repro.aig.rebuild import RebuildResult, rebuild_network
from repro.obs import get_tracer
from repro.simulation.partial import simulate_words
from repro.sweep.classes import EquivalenceClasses, SimulationState

__all__ = ["SweepState"]


class SweepState:
    """The live miter plus all phase-carried knowledge.

    Duck-types the :class:`~repro.sweep.classes.SimulationState` surface
    (``num_pis``, ``pi_words``, ``tables``, ``classes``,
    ``add_cex_patterns``) so it can ride ``CecResult.sim_state`` into a
    downstream checker unchanged.

    Parameters
    ----------
    miter:
        The (cleaned) miter this state owns.  All mutation goes through
        :meth:`apply_merges` / :meth:`set_pos` / :meth:`replace_network`.
    num_random_words, seed, strategy:
        Pattern-pool parameters, as for
        :class:`~repro.sweep.classes.SimulationState`.  The pool itself
        is created lazily on first use so PO-phase-only runs never pay
        for it.
    """

    def __init__(
        self,
        miter: Aig,
        num_random_words: int = 32,
        seed: int = 2025,
        strategy: str = "random",
    ) -> None:
        self._aig = miter
        self.num_pis = miter.num_pis
        self._num_random_words = num_random_words
        self._seed = seed
        self._strategy = strategy
        self._sim: Optional[SimulationState] = None
        #: Carried signature matrix, aligned with the *current* network.
        self._tables: Optional[np.ndarray] = None
        self._classes: Optional[EquivalenceClasses] = None
        #: Pool width (words) the classes were computed at.
        self._classes_words = -1
        #: Carried fingerprint salt matrix ``(num_nodes, salt_words)``.
        self._salt: Optional[np.ndarray] = None
        self._bound = None
        #: Truth tables / truth-table keys carried between cache binds.
        self._table_carry: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        self._key_carry: Dict[int, str] = {}
        #: Original-miter node id -> current literal (-1 once swept).
        self.origin_literals = np.arange(miter.num_nodes, dtype=np.int64) * 2
        #: True while :attr:`origin_literals` still tracks the original
        #: nodes (a :meth:`replace_network` restructure severs the link).
        self.origin_valid = True
        self.rebuilds = 0
        #: Feature memos for the adaptive scheduler (supports / levels of
        #: the *current* network; recomputed when the network changes).
        self._feature_net: Optional[Aig] = None
        self._feature_cap = -1
        self._feature_supports: Optional[list] = None
        self._feature_levels: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Pattern pool (SimulationState surface)
    # ------------------------------------------------------------------

    def _pool(self) -> SimulationState:
        if self._sim is None:
            self._sim = SimulationState(
                self.num_pis,
                self._num_random_words,
                self._seed,
                strategy=self._strategy,
            )
        return self._sim

    def pool(self) -> SimulationState:
        """The pattern pool (created on first use) — for EC transfer."""
        return self._pool()

    def adopt_pool(self, sim: SimulationState) -> None:
        """Reuse an existing pattern pool (EC transfer between engines).

        The pool's counter-examples pre-split the classes exactly as if
        this state had found them itself.  Any signature matrix carried
        so far is dropped — it belongs to the previous pool.
        """
        if sim.num_pis != self.num_pis:
            raise ValueError(
                f"pool has {sim.num_pis} PIs, state has {self.num_pis}"
            )
        self._sim = sim
        self._tables = None
        self._classes = None
        self._classes_words = -1

    @property
    def pi_words(self) -> np.ndarray:
        """PI pattern words of the pool (created on first use)."""
        return self._pool().pi_words

    @property
    def num_patterns(self) -> int:
        """Total simulation patterns in the pool (64 per word)."""
        return self._pool().num_patterns

    # ------------------------------------------------------------------
    # Feature extraction (the adaptive scheduler's dispatch hook)
    # ------------------------------------------------------------------

    def support_sets(self, cap: int) -> list:
        """Capped structural supports of the current network, memoised.

        Same contract as :func:`repro.aig.traversal.supports_capped`
        (frozenset per node, ``None`` above ``cap``), but cached against
        the live network so the scheduler's per-round feature extraction
        pays the linear pass once per reduction instead of once per
        round.
        """
        if (
            self._feature_supports is None
            or self._feature_net is not self._aig
            or self._feature_cap != cap
        ):
            from repro.aig.traversal import supports_capped

            self._feature_supports = supports_capped(self._aig, cap)
            self._feature_levels = None
            self._feature_net = self._aig
            self._feature_cap = cap
        return self._feature_supports

    def levels(self) -> np.ndarray:
        """Per-node AIG levels of the current network, memoised."""
        if self._feature_levels is None or self._feature_net is not self._aig:
            self._feature_levels = self._aig.levels()
            if self._feature_net is not self._aig:
                self._feature_supports = None
                self._feature_cap = -1
            self._feature_net = self._aig
        return self._feature_levels

    @property
    def agreement_words(self) -> int:
        """Signature agreement depth of the current classes, in words.

        Same-class pairs agree on *every* pool signature, so the pool
        width is the depth to which their conjectured equivalence has
        survived simulation — a confidence feature for the scheduler.
        """
        return int(self.pi_words.shape[1])

    @property
    def num_cex(self) -> int:
        """Counter-example patterns added so far."""
        return 0 if self._sim is None else self._sim.num_cex

    def add_cex_patterns(
        self,
        patterns: Sequence[Sequence[int]],
        distance1: bool = False,
        distance1_limit: int = 64,
    ) -> None:
        """Append counter-example patterns to the pool.

        The carried signature matrix is *not* invalidated: the existing
        columns stay exact, and :meth:`tables` simulates only the newly
        appended words on demand.
        """
        if not patterns:
            return
        self._pool().add_cex_patterns(
            patterns, distance1=distance1, distance1_limit=distance1_limit
        )
        self._classes = None
        self._classes_words = -1

    # ------------------------------------------------------------------
    # Derived knowledge
    # ------------------------------------------------------------------

    def network(self) -> Aig:
        """The current miter."""
        return self._aig

    def matches(self, miter: Aig) -> bool:
        """True when ``miter`` *is* (or structurally equals) the network.

        Structural equality matters because checkers historically ran
        ``cleanup`` on a handed-over residue; a residue produced by this
        state is already clean, so the copy is equal and the carried
        knowledge applies to it verbatim.
        """
        own = self._aig
        if miter is own:
            return True
        if (
            miter.num_pis != own.num_pis
            or miter.num_ands != own.num_ands
            or miter.pos != own.pos
        ):
            return False
        of0, of1 = own.fanin_literals()
        mf0, mf1 = miter.fanin_literals()
        return bool(np.array_equal(of0, mf0) and np.array_equal(of1, mf1))

    def tables(self, miter: Optional[Aig] = None) -> np.ndarray:
        """Signature matrix of the current network under the pool.

        Carried columns are reused; only pattern words appended since
        the last call are simulated.  ``miter``, when given, must be the
        state's own network (the historical call shape) — a foreign
        network raises, because its signatures would not be carryable.
        """
        if miter is not None and not self.matches(miter):
            raise ValueError(
                "tables() called with a network this state does not own"
            )
        pool = self._pool()
        width = pool.pi_words.shape[1]
        tracer = get_tracer()
        if self._tables is None:
            self._tables = simulate_words(self._aig, pool.pi_words)
            tracer.metrics.counter_add(
                "state.initial_words", int(self._tables.size)
            )
            return self._tables
        have = self._tables.shape[1]
        if have < width:
            with tracer.span("carryover", category="state") as span:
                fresh = simulate_words(
                    self._aig, pool.pi_words[:, have:]
                )
                self._tables = np.hstack([self._tables, fresh])
                carried = int(self._aig.num_nodes * have)
                span.set("carried_words", carried)
                span.set("recomputed_words", int(fresh.size))
                tracer.metrics.counter_add("state.carried_words", carried)
                tracer.metrics.counter_add(
                    "state.recomputed_words", int(fresh.size)
                )
        return self._tables

    def classes(
        self,
        miter: Optional[Aig] = None,
        tables: Optional[np.ndarray] = None,
    ) -> EquivalenceClasses:
        """Equivalence classes of the current network under the pool.

        Classes remapped through the last reduction are served without
        re-clustering; they are recomputed only when the pool has grown
        since (new patterns can split any class).
        """
        if miter is not None and not self.matches(miter):
            raise ValueError(
                "classes() called with a network this state does not own"
            )
        width = self._pool().pi_words.shape[1]
        if self._classes is not None and self._classes_words == width:
            return self._classes
        if tables is None:
            tables = self.tables()
        self._classes = EquivalenceClasses.from_tables(tables)
        self._classes_words = width
        return self._classes

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def apply_merges(self, merges: Dict[int, Tuple[int, int]]) -> Aig:
        """Merge proved pairs, rebuild the miter and carry all knowledge.

        ``merges`` maps a proved node to ``(representative, phase)`` as
        in :func:`repro.sweep.reduction.reduce_miter`.  The rebuild is
        the vectorised gather/strash of :mod:`repro.aig.rebuild`;
        signature rows, the salt matrix, the equivalence classes and the
        cached truth tables of every surviving node move over by pure
        index gathers — nothing is re-simulated.
        """
        if not merges:
            return self._aig
        replacements = {
            node: lit(target, phase)
            for node, (target, phase) in merges.items()
        }
        tracer = get_tracer()
        with tracer.span(
            "rebuild",
            category="state",
            merges=len(merges),
            ands_before=self._aig.num_ands,
        ) as span:
            result = rebuild_network(
                self._aig, replacements, name=self._aig.name, prune="after"
            )
            span.set("rounds", result.rounds)
            span.set("ands_after", result.aig.num_ands)
            carried = self._carry_over(result)
            span.set("carried_words", carried)
            span.set("recomputed_words", 0)
        tracer.metrics.counter_add("state.rebuilds")
        return self._aig

    def set_pos(self, new_pos: List[int]) -> Aig:
        """Replace the PO literals and sweep the dead cones (P phase).

        Equivalent to building an :class:`Aig` with the new POs and
        running ``cleanup`` — same relabel semantics, but the carried
        knowledge survives the compaction.
        """
        if list(new_pos) == self._aig.pos:
            return self._aig
        staged = Aig(
            self._aig.num_pis,
            self._aig.fanin_literals()[0],
            self._aig.fanin_literals()[1],
            new_pos,
            name=self._aig.name,
        )
        tracer = get_tracer()
        with tracer.span(
            "rebuild",
            category="state",
            merges=0,
            ands_before=self._aig.num_ands,
        ) as span:
            result = rebuild_network(
                staged, None, name=self._aig.name, prune="before"
            )
            span.set("rounds", result.rounds)
            span.set("ands_after", result.aig.num_ands)
            carried = self._carry_over(result)
            span.set("carried_words", carried)
            span.set("recomputed_words", 0)
        tracer.metrics.counter_add("state.rebuilds")
        return self._aig

    def replace_network(self, aig: Aig) -> Aig:
        """Adopt a restructured network (e.g. after cut rewriting).

        Rewriting preserves the PO functions but loses the node
        correspondence, so all carried per-node knowledge is dropped and
        the next :meth:`tables` call re-simulates from scratch (counted
        as recomputed words, not initial ones).
        """
        if aig.num_pis != self.num_pis:
            raise ValueError("replacement network changes the PI interface")
        self._aig = aig
        if self._tables is not None:
            tracer = get_tracer()
            with tracer.span("carryover", category="state") as span:
                span.set("carried_words", 0)
                recomputed = int(aig.num_nodes * self._tables.shape[1])
                span.set("recomputed_words", recomputed)
                tracer.metrics.counter_add(
                    "state.recomputed_words", recomputed
                )
                self._tables = simulate_words(aig, self.pi_words)
        self._classes = None
        self._classes_words = -1
        self._salt = None
        self._bound = None
        self._table_carry = {}
        self._key_carry = {}
        self.origin_valid = False
        self.origin_literals = np.full(
            self.origin_literals.shape, -1, dtype=np.int64
        )
        return self._aig

    def _carry_over(self, result: RebuildResult) -> int:
        """Remap every piece of carried knowledge; returns carried words."""
        node_map = result.node_map
        new_aig = result.aig
        # Old ids of the surviving nodes in new-id order: const + PIs
        # keep their ids, kept ANDs are listed by the rebuild.
        old_of_new = np.concatenate(
            [
                np.arange(self._aig.first_and, dtype=np.int64),
                self._aig.first_and + result.kept_ands,
            ]
        )
        carried = 0
        if self._tables is not None:
            # Merges are proved exact equivalences: every surviving node
            # computes the same function as its old self, so its
            # signature row moves by a pure gather.
            self._tables = self._tables[old_of_new]
            carried += int(self._tables.size)
        if self._salt is not None:
            self._salt = self._salt[old_of_new]
            carried += int(self._salt.size)
        if (
            self._classes is not None
            and self._sim is not None
            and self._classes_words == self._sim.pi_words.shape[1]
        ):
            self._classes = self._classes.remap(node_map)
        else:
            self._classes = None
            self._classes_words = -1
        self._carry_fingerprints(node_map)
        if self.origin_valid:
            origin = self.origin_literals
            alive = origin >= 0
            mapped = node_map[origin[alive] >> 1]
            origin[alive] = np.where(
                mapped >= 0, mapped ^ (origin[alive] & 1), -1
            )
        self._aig = new_aig
        self.rebuilds += 1
        tracer = get_tracer()
        tracer.metrics.counter_add("state.carried_words", carried)
        return carried

    def _carry_fingerprints(self, node_map: np.ndarray) -> None:
        """Move cached truth tables / keys onto their new node ids."""
        source_tables: Dict = dict(self._table_carry)
        source_keys: Dict[int, str] = dict(self._key_carry)
        if self._bound is not None:
            fp = self._bound.fingerprints
            for node, entry in fp._tables.items():
                if entry is not None:
                    source_tables[node] = entry
            for node, key in fp._final_keys.items():
                if key.startswith("T:"):
                    source_keys[node] = key
            self._bound = None
        new_tables: Dict = {}
        new_keys: Dict[int, str] = {}
        for node, entry in source_tables.items():
            mapped = int(node_map[node])
            if mapped < 0:
                continue
            if mapped & 1:
                # The new node computes the complement: complement the
                # table (same functional support).
                table, support = entry
                mask = (1 << (1 << len(support))) - 1
                new_tables[mapped >> 1] = (mask ^ table, support)
            else:
                new_tables[mapped >> 1] = entry
        for node, key in source_keys.items():
            mapped = int(node_map[node])
            # Keys digest the function including its phase, so only
            # phase-preserving survivors can reuse them.
            if mapped >= 0 and not (mapped & 1):
                new_keys[mapped >> 1] = key
        self._table_carry = new_tables
        self._key_carry = new_keys

    # ------------------------------------------------------------------
    # Knowledge-cache binding
    # ------------------------------------------------------------------

    def bound_cache(self, cache):
        """Bind ``cache`` to the current network, reusing carried state.

        The fingerprint salt matrix and every memoised truth table /
        truth-table key survive reductions, so re-binding after a
        reduction costs a structural-hash pass instead of a full
        re-simulation plus cone re-evaluation.
        """
        if cache is None:
            return None
        if self._bound is not None and self._bound.cache is cache:
            return self._bound
        from repro.cache.fingerprint import MiterFingerprints

        fingerprints = MiterFingerprints(
            self._aig,
            cache.config,
            salt_matrix=self._salt_matrix(cache.config),
            table_carry=self._table_carry,
            key_carry=self._key_carry,
        )
        self._bound = cache.bind(self._aig, fingerprints=fingerprints)
        return self._bound

    def _salt_matrix(self, config) -> Optional[np.ndarray]:
        if config.salt_words <= 0 or self.num_pis == 0:
            return None
        if (
            self._salt is None
            or self._salt.shape[1] != config.salt_words
        ):
            from repro.cache.fingerprint import SALT_SEED
            from repro.simulation.bitops import random_words

            rng = np.random.default_rng(SALT_SEED)
            words = random_words(self.num_pis, config.salt_words, rng)
            self._salt = simulate_words(self._aig, words)
            get_tracer().metrics.counter_add(
                "state.initial_words", int(self._salt.size)
            )
        return self._salt

    # ------------------------------------------------------------------
    # Shared-memory transport (repro.shm data plane)
    # ------------------------------------------------------------------

    @property
    def carried_words(self) -> int:
        """Signature words currently carried (0 when none computed)."""
        return 0 if self._tables is None else int(self._tables.size)

    def to_shm_arrays(self) -> Tuple[Dict[str, np.ndarray], Dict]:
        """Flatten this state into segment arrays + picklable metadata.

        The arrays are everything big: the miter's fanin tables and POs,
        the PI pattern pool, the carried signature matrix, the salt
        matrix, and the origin union-find.  Metadata stays descriptor
        sized.  Derived-but-cheap knowledge (equivalence classes, cached
        truth tables, the cache binding) is dropped, mirroring
        :meth:`__getstate__`: classes re-cluster lazily from the carried
        tables without any re-simulation.
        """
        fanin0, fanin1 = self._aig.fanin_literals()
        arrays: Dict[str, np.ndarray] = {
            "fanin0": fanin0,
            "fanin1": fanin1,
            "pos": np.asarray(self._aig.pos, dtype=np.int64),
            "origin_literals": self.origin_literals,
        }
        if self._sim is not None:
            arrays["pi_words"] = self._sim.pi_words
        if self._tables is not None:
            arrays["tables"] = self._tables
        if self._salt is not None:
            arrays["salt"] = self._salt
        meta = {
            "kind": "sweep_state",
            "num_pis": int(self.num_pis),
            "name": self._aig.name,
            "num_random_words": self._num_random_words,
            "seed": self._seed,
            "strategy": self._strategy,
            "num_cex": self.num_cex,
            "origin_valid": bool(self.origin_valid),
            "rebuilds": int(self.rebuilds),
        }
        return arrays, meta

    @classmethod
    def attach(
        cls, arrays: Dict[str, np.ndarray], meta: Dict
    ) -> "SweepState":
        """Reconstruct a state *over* segment views — mapping, not copying.

        The miter, pattern pool, signature matrix and salt matrix all
        stay read-only views of the segment buffer; they are only ever
        replaced wholesale (gather/hstack), never written in place, so
        read-only sharing is safe.  :attr:`origin_literals` is the one
        exception — :meth:`_carry_over` mutates it in place — so it gets
        a private writable copy up front.

        The caller owns the segment lifetime: call :meth:`detach` before
        the mapping is released if the state (or its network) outlives
        the segment.
        """
        aig = Aig(
            int(meta["num_pis"]),
            arrays["fanin0"],
            arrays["fanin1"],
            [int(po) for po in arrays["pos"]],
            name=str(meta.get("name", "miter")),
        )
        state = cls(
            aig,
            num_random_words=int(meta.get("num_random_words", 32)),
            seed=int(meta.get("seed", 2025)),
            strategy=str(meta.get("strategy", "random")),
        )
        pi_words = arrays.get("pi_words")
        if pi_words is not None:
            state._sim = SimulationState.from_pool(
                state.num_pis, pi_words, num_cex=int(meta.get("num_cex", 0))
            )
        tables = arrays.get("tables")
        if tables is not None:
            state._tables = tables
        salt = arrays.get("salt")
        if salt is not None:
            state._salt = salt
        state.origin_literals = np.array(
            arrays["origin_literals"], dtype=np.int64, copy=True
        )
        state.origin_valid = bool(meta.get("origin_valid", False))
        state.rebuilds = int(meta.get("rebuilds", 0))
        return state

    def detach(self) -> "SweepState":
        """Divorce the state from any shared-memory segment it views.

        Copies exactly the arrays that do not own their memory (network
        fanins, pool words, signature/salt matrices) so the registry can
        reap the backing segment while this state lives on.  A state that
        already owns everything is returned unchanged — carried
        knowledge is never dropped.  Returns ``self``.
        """

        def _owns(array: np.ndarray) -> bool:
            return array.base is None or array.flags.owndata

        fanin0, fanin1 = self._aig.fanin_literals()
        if not (_owns(fanin0) and _owns(fanin1)):
            self._aig = self._aig.copy()
        if self._sim is not None and not _owns(self._sim.pi_words):
            self._sim.pi_words = self._sim.pi_words.copy()
        if self._tables is not None and not _owns(self._tables):
            self._tables = self._tables.copy()
        if self._salt is not None and not _owns(self._salt):
            self._salt = self._salt.copy()
        if not _owns(self.origin_literals):
            self.origin_literals = self.origin_literals.copy()
        # The cache binding references the pre-copy arrays; drop it so a
        # later bind rebuilds over the owned ones.
        self._bound = None
        return self

    # ------------------------------------------------------------------
    # Pickling (portfolio workers ship CecResult.sim_state)
    # ------------------------------------------------------------------

    def __getstate__(self):
        state = {
            "_aig": self._aig,
            "num_pis": self.num_pis,
            "_num_random_words": self._num_random_words,
            "_seed": self._seed,
            "_strategy": self._strategy,
            "_sim": self._sim,
            "origin_literals": self.origin_literals,
            "origin_valid": self.origin_valid,
            "rebuilds": self.rebuilds,
        }
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Derived knowledge is rebuilt lazily on the receiving side: the
        # signature matrix can be large and the cache binding holds
        # process-local resources, so neither crosses the wire.
        self._tables = None
        self._classes = None
        self._feature_net = None
        self._feature_cap = -1
        self._feature_supports = None
        self._feature_levels = None
        self._classes_words = -1
        self._salt = None
        self._bound = None
        self._table_carry = {}
        self._key_carry = {}
