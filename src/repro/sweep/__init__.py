"""The simulation-based sweeping engine (the paper's core contribution).

Contains the equivalence-class manager fed by partial simulation, the
phase implementations of the Fig. 5 flow (PO checking → global function
checking → repeated local function checking), miter reduction, the engine
configuration, and the per-phase reporting used to regenerate Fig. 6/7.
"""

from repro.sweep.classes import (
    EquivalenceClasses,
    SimulationState,
    initial_patterns,
)
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecResult, CecStatus, SimSweepEngine
from repro.sweep.report import EngineReport, PhaseRecord
from repro.sweep.state import SweepState

__all__ = [
    "CecResult",
    "CecStatus",
    "EngineConfig",
    "EngineReport",
    "EquivalenceClasses",
    "PhaseRecord",
    "SimSweepEngine",
    "SimulationState",
    "SweepState",
    "initial_patterns",
]
