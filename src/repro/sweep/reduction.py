"""Miter reduction: applying proved equivalences.

The miter manager's reduction step (§III-A) merges every proved pair into
its class representative and rebuilds the network with structural hashing
and dangling-logic removal.  Merging is phase-aware — a pair proved
equivalent up to complementation merges onto the complemented literal.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.aig.literals import lit
from repro.aig.network import Aig
from repro.aig.transform import rebuild_with_replacements


def reduce_miter(
    miter: Aig, merges: Dict[int, Tuple[int, int]]
) -> Tuple[Aig, Dict[int, int]]:
    """Merge proved pairs and rebuild the miter.

    Parameters
    ----------
    miter:
        The current miter.
    merges:
        Maps a proved node to ``(representative, phase)``: the node is
        functionally equal to ``lit(representative, phase)``.  The
        representative id must be smaller than the node id (class
        representatives are class minima, so this always holds).

    Returns
    -------
    (reduced, literal_map):
        The reduced miter and the old-node → new-literal map for nodes
        that survived (used to carry state across reductions).
    """
    if not merges:
        return miter, {
            node: lit(node) for node in range(miter.num_nodes)
        }
    replacements = {
        node: lit(target, phase) for node, (target, phase) in merges.items()
    }
    return rebuild_with_replacements(miter, replacements, name=miter.name)
