"""Per-phase statistics of an engine run.

The report is the data source for the paper's Fig. 6 (runtime breakdown
by phase) and feeds Table II (reduction percentage, engine runtime).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PhaseRecord:
    """Statistics of one engine phase (P, G, or one L phase)."""

    #: Phase kind: ``"P"``, ``"G"`` or ``"L"``.
    kind: str
    #: Wall-clock seconds spent in the phase.
    seconds: float = 0.0
    #: Candidate pairs (or POs, for P) examined.
    candidates: int = 0
    #: Pairs proved equivalent (POs proved constant for P).
    proved: int = 0
    #: Counter-examples collected.
    cex: int = 0
    #: Miter AND count when the phase finished.
    miter_ands_after: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for serialisation in benchmark output."""
        return {
            "kind": self.kind,
            "seconds": self.seconds,
            "candidates": self.candidates,
            "proved": self.proved,
            "cex": self.cex,
            "miter_ands_after": self.miter_ands_after,
        }


@dataclass
class EngineReport:
    """Full run record of the simulation-based engine."""

    initial_ands: int = 0
    final_ands: int = 0
    phases: List[PhaseRecord] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def reduction_percent(self) -> float:
        """Miter size reduction achieved by the engine (Table II column).

        100 % means the engine fully proved the miter on its own.
        """
        if self.initial_ands == 0:
            return 100.0
        return 100.0 * (1.0 - self.final_ands / self.initial_ands)

    def phase_seconds(self) -> Dict[str, float]:
        """Aggregate wall-clock per phase kind (the Fig. 6 breakdown)."""
        totals: Dict[str, float] = {}
        for record in self.phases:
            totals[record.kind] = totals.get(record.kind, 0.0) + record.seconds
        return totals

    def phase_fractions(self) -> Dict[str, float]:
        """Phase runtime fractions normalised to the engine total."""
        totals = self.phase_seconds()
        denom = sum(totals.values())
        if denom <= 0.0:
            return {kind: 0.0 for kind in totals}
        return {kind: sec / denom for kind, sec in totals.items()}


class PhaseTimer:
    """Context manager that fills a :class:`PhaseRecord`'s duration."""

    def __init__(self, record: PhaseRecord) -> None:
        self.record = record
        self._start: Optional[float] = None

    def __enter__(self) -> PhaseRecord:
        self._start = time.perf_counter()
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        self.record.seconds += time.perf_counter() - self._start
