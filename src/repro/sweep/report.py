"""Per-phase statistics of an engine run.

The report is the data source for the paper's Fig. 6 (runtime breakdown
by phase) and feeds Table II (reduction percentage, engine runtime).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.counters import CacheCounters


@dataclass
class PhaseRecord:
    """Statistics of one engine phase (P, G, or one L phase)."""

    #: Phase kind: ``"P"``, ``"G"`` or ``"L"``.
    kind: str
    #: Wall-clock seconds spent in the phase.
    seconds: float = 0.0
    #: Candidate pairs (or POs, for P) examined.
    candidates: int = 0
    #: Pairs proved equivalent (POs proved constant for P).
    proved: int = 0
    #: Counter-examples collected.
    cex: int = 0
    #: Miter AND count when the phase finished.
    miter_ands_after: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for serialisation in benchmark output."""
        return {
            "kind": self.kind,
            "seconds": self.seconds,
            "candidates": self.candidates,
            "proved": self.proved,
            "cex": self.cex,
            "miter_ands_after": self.miter_ands_after,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PhaseRecord":
        """Inverse of :meth:`as_dict` (the serialisation round-trip).

        Unknown keys are ignored so payloads may grow fields without
        breaking older readers; missing keys take the field defaults.
        """
        return cls(
            kind=data["kind"],
            seconds=float(data.get("seconds", 0.0)),
            candidates=int(data.get("candidates", 0)),
            proved=int(data.get("proved", 0)),
            cex=int(data.get("cex", 0)),
            miter_ands_after=int(data.get("miter_ands_after", 0)),
        )


@dataclass
class EngineReport:
    """Full run record of the simulation-based engine."""

    initial_ands: int = 0
    final_ands: int = 0
    phases: List[PhaseRecord] = field(default_factory=list)
    total_seconds: float = 0.0
    #: Candidate pairs actually put through exhaustive simulation.  On a
    #: warm cached run of an already-proved miter this drops to zero —
    #: the acceptance metric of the functional-knowledge cache.
    exhaustive_pairs: int = 0
    #: Cache activity during this run (``None`` when no cache was
    #: configured); a per-run delta, not the process-wide totals.
    cache: Optional[CacheCounters] = None
    #: Snapshot of the ambient tracer's metrics registry, taken when the
    #: run finished with tracing enabled (empty otherwise).  Cumulative
    #: for the recording process, not a per-run delta.
    metrics: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        """Plain-dict view (benchmark payloads, worker result queues)."""
        return {
            "initial_ands": self.initial_ands,
            "final_ands": self.final_ands,
            "total_seconds": self.total_seconds,
            "exhaustive_pairs": self.exhaustive_pairs,
            "phases": [phase.as_dict() for phase in self.phases],
            "cache": self.cache.as_dict() if self.cache is not None else None,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EngineReport":
        """Inverse of :meth:`as_dict` — the round-trip the portfolio
        workers use to ship their reports over the result queue."""
        cache = data.get("cache")
        return cls(
            initial_ands=int(data.get("initial_ands", 0)),
            final_ands=int(data.get("final_ands", 0)),
            phases=[
                PhaseRecord.from_dict(phase)
                for phase in data.get("phases", [])
            ],
            total_seconds=float(data.get("total_seconds", 0.0)),
            exhaustive_pairs=int(data.get("exhaustive_pairs", 0)),
            cache=CacheCounters.from_dict(cache) if cache else None,
            metrics=dict(data.get("metrics", {})),
        )

    @property
    def reduction_percent(self) -> float:
        """Miter size reduction achieved by the engine (Table II column).

        100 % means the engine fully proved the miter on its own.
        """
        if self.initial_ands == 0:
            return 100.0
        return 100.0 * (1.0 - self.final_ands / self.initial_ands)

    def phase_seconds(self) -> Dict[str, float]:
        """Aggregate wall-clock per phase kind (the Fig. 6 breakdown)."""
        totals: Dict[str, float] = {}
        for record in self.phases:
            totals[record.kind] = totals.get(record.kind, 0.0) + record.seconds
        return totals

    def phase_fractions(self) -> Dict[str, float]:
        """Phase runtime fractions normalised to the engine total."""
        totals = self.phase_seconds()
        denom = sum(totals.values())
        if denom <= 0.0:
            return {kind: 0.0 for kind in totals}
        return {kind: sec / denom for kind, sec in totals.items()}


@dataclass
class EngineFailure:
    """Structured record of one engine's crash inside a portfolio run.

    A worker that raises posts its traceback text; a worker that dies
    without reporting (killed, segfault, unpicklable result) is recorded
    with its exit code and an explanatory message.
    """

    #: Engine name (the spec kind, e.g. ``"sat"``).
    engine: str
    #: One-line description of the failure.
    message: str
    #: Full traceback text when the worker raised; empty otherwise.
    traceback: str = ""
    #: Process exit code for abnormal exits (``None`` when the worker
    #: reported its own exception).
    exit_code: Optional[int] = None
    #: Canonical kill reason when the orchestrator stopped this worker
    #: before (or while) it failed: ``"timeout"`` (budget/deadline) or
    #: ``"cancelled"`` (another engine won); empty for organic crashes.
    #: Always one of the :mod:`repro.exec.cancel` canonical strings —
    #: normalised through the worker's cancellation token.
    reason: str = ""

    def __str__(self) -> str:
        suffix = f" (exit code {self.exit_code})" if self.exit_code is not None else ""
        if self.reason:
            suffix += f" [{self.reason}]"
        return f"{self.engine}: {self.message}{suffix}"


@dataclass
class EngineRunRecord:
    """Per-engine outcome of a portfolio run.

    ``status`` is one of:

    - ``"equivalent"`` / ``"nonequivalent"`` — the engine produced the
      winning conclusive verdict;
    - ``"undecided"`` — the engine finished without a verdict (its
      residue size, if any, is in ``residue_ands``);
    - ``"failed"`` — the engine crashed (details in ``failure``);
    - ``"timeout"`` — the engine was terminated on its per-engine budget
      or the global deadline;
    - ``"cancelled"`` — another engine won first and this one was
      stopped early.
    """

    name: str
    status: str
    seconds: float = 0.0
    #: AND count of the residue the engine returned (UNDECIDED only).
    residue_ands: Optional[int] = None
    failure: Optional[EngineFailure] = None
    #: The engine's own :class:`EngineReport`, when it shipped one back
    #: (parallel workers reconstruct it via the as_dict/from_dict
    #: round-trip; inline stages attach it directly).
    report: Optional[EngineReport] = None

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for serialisation in benchmark output."""
        return {
            "name": self.name,
            "status": self.status,
            "seconds": self.seconds,
            "residue_ands": self.residue_ands,
            "failure": str(self.failure) if self.failure else None,
            "report": self.report.as_dict() if self.report else None,
        }


@dataclass
class PortfolioReport:
    """Full record of a multi-engine portfolio run.

    Attached to :attr:`repro.sweep.engine.CecResult.report` by the
    portfolio checkers and printed by the CLI's ``--verbose``.
    """

    engines: List[EngineRunRecord] = field(default_factory=list)
    #: Name of the engine that produced the verdict (``None`` when the
    #: run ended UNDECIDED).
    winner: Optional[str] = None
    total_seconds: float = 0.0
    #: Multiprocessing start method the run used (``"inline"`` for the
    #: staged, single-process portfolio).
    start_method: str = "inline"
    #: Record of the timeout finisher engine, when one ran.
    finisher: Optional[EngineRunRecord] = None
    #: Aggregated cache activity across all engines of the run (``None``
    #: when no cache was configured).
    cache: Optional[CacheCounters] = None
    #: Metrics registry snapshot of the run's tracer — includes every
    #: worker's merged registry when tracing was enabled (empty
    #: otherwise).
    metrics: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        """Plain-dict view for serialisation in benchmark output."""
        return {
            "engines": [record.as_dict() for record in self.engines],
            "winner": self.winner,
            "total_seconds": self.total_seconds,
            "start_method": self.start_method,
            "finisher": (
                self.finisher.as_dict() if self.finisher is not None else None
            ),
            "cache": self.cache.as_dict() if self.cache is not None else None,
            "metrics": self.metrics,
        }

    @property
    def failures(self) -> List[EngineFailure]:
        """All engine failures observed during the run."""
        found = [r.failure for r in self.engines if r.failure is not None]
        if self.finisher is not None and self.finisher.failure is not None:
            found.append(self.finisher.failure)
        return found

    def record(self, name: str) -> Optional[EngineRunRecord]:
        """The first record of engine ``name`` (``None`` if absent)."""
        for rec in self.engines:
            if rec.name == name:
                return rec
        return None

    def summary_lines(self) -> List[str]:
        """Human-readable per-engine summary (the ``--verbose`` output)."""
        lines = [
            f"portfolio: start_method={self.start_method}, "
            f"winner={self.winner or '-'}, "
            f"total {self.total_seconds:.2f}s"
        ]
        records = list(self.engines)
        if self.finisher is not None:
            records.append(self.finisher)
        for rec in records:
            parts = [f"  engine {rec.name}: {rec.status}, {rec.seconds:.2f}s"]
            if rec.residue_ands is not None:
                parts.append(f"residue {rec.residue_ands} ANDs")
            if rec.failure is not None:
                parts.append(str(rec.failure))
            lines.append(", ".join(parts))
        if self.cache is not None:
            lines.append(f"  cache: {self.cache.summary()}")
        return lines


class PhaseTimer:
    """Context manager that fills a :class:`PhaseRecord`'s duration."""

    def __init__(self, record: PhaseRecord) -> None:
        self.record = record
        self._start: Optional[float] = None

    def __enter__(self) -> PhaseRecord:
        self._start = time.perf_counter()
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        self.record.seconds += time.perf_counter() - self._start
