"""Engine configuration.

The parameter names follow the paper: ``k_P``/``k_p`` bound the PO
checking phase, ``k_g`` the global function checking phase, ``k_l`` and
``C`` the cut generator, and ``k_s`` (derived, see
:meth:`EngineConfig.k_s_for`) the support size of merged windows.

The paper's experiments use ``k_P=32, k_p=k_g=16, k_l=8, C=8`` on a
48 GB GPU; the defaults here are scaled to interpreter speed (see
DESIGN.md §2) but every knob is exposed so the paper values can be set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.cache.config import CacheConfig


@dataclass
class EngineConfig:
    """Tuning knobs of :class:`~repro.sweep.engine.SimSweepEngine`."""

    #: One-shot PO checking threshold: if *every* PO support is ≤ k_P the
    #: P phase checks all POs exhaustively.
    k_P: int = 20

    #: Per-PO threshold used when the one-shot condition fails: only POs
    #: with support ≤ k_p are simulatable.
    k_p: int = 14

    #: Support-size threshold of pairs checked in the global phase.
    k_g: int = 14

    #: Maximum cut size for local function checking.
    k_l: int = 8

    #: Number of priority cuts kept per node (the ``C`` parameter).
    C: int = 8

    #: Random 64-pattern words used to initialise equivalence classes.
    num_random_words: int = 32

    #: Initial-pattern strategy ("random", "counting", "walking",
    #: "mixed"); see :func:`repro.sweep.classes.initial_patterns`.
    pattern_strategy: str = "random"

    #: Memory budget of the exhaustive simulator, in 64-bit words
    #: (the ``M`` of Algorithm 1).
    memory_budget_words: int = 1 << 22

    #: Capacity of the common-cut buffer, in windows (Algorithm 2).
    buffer_capacity: int = 4096

    #: Maximum number of repeated local checking phases; each phase runs
    #: the configured passes and reduces the miter once at its end.  A
    #: phase that proves nothing ends the loop early, so this is a cap,
    #: not a fixed count (multiplier-style miters converge in ~13).
    max_local_phases: int = 24

    #: Maximum global-phase iterations (check → refine → reduce cycles).
    max_global_iterations: int = 4

    #: Enable window merging for global function checking (§III-B3).
    window_merging: bool = True

    #: Enable similarity-driven cut selection for non-representatives.
    similarity_selection: bool = True

    #: Which Table I passes each local phase runs, in order.
    passes: Tuple[int, ...] = (1, 2, 3)

    #: Adaptive pass disabling (§V): a pass that proves nothing in a
    #: local phase is skipped in subsequent phases.
    adaptive_passes: bool = False

    #: Cap on common cuts generated per pair and pass (0 = unlimited).
    max_common_cuts_per_pair: int = 0

    #: Distance-1 simulation of counter-examples (§V, [8]): every CEX is
    #: expanded into its Hamming-1 neighbourhood before refining classes.
    distance1_cex: bool = False

    #: Interleave sweeping with logic rewriting (§V, [8][14]): apply one
    #: cut-rewriting pass to the reduced miter between local phases so
    #: the next phase sees (and cuts) fresh structure.
    interleave_rewriting: bool = False

    #: RNG seed; the engine is deterministic for a fixed seed.
    seed: int = 2025

    #: Functional-knowledge cache (:mod:`repro.cache`).  ``None``
    #: disables caching entirely; a :class:`~repro.cache.CacheConfig`
    #: with a ``directory`` enables cross-run warm starts.
    cache: Optional[CacheConfig] = None

    def k_s_for(self, threshold: int) -> int:
        """Window-merging support bound for a phase.

        The paper sets ``k_s`` to the support threshold of the running
        phase (k_P, k_p or k_g), so merged windows never exceed what the
        phase would simulate anyway.
        """
        return threshold

    @classmethod
    def paper(cls) -> "EngineConfig":
        """The exact parameter values of §IV (GPU-scale; slow in Python)."""
        return cls(k_P=32, k_p=16, k_g=16, k_l=8, C=8)

    @classmethod
    def fast(cls) -> "EngineConfig":
        """Smaller thresholds for unit tests and quick experiments."""
        return cls(
            k_P=12,
            k_p=10,
            k_g=10,
            k_l=6,
            C=4,
            num_random_words=8,
            memory_budget_words=1 << 18,
            buffer_capacity=512,
            max_local_phases=4,
        )

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameter combinations."""
        if self.k_P < self.k_p:
            raise ValueError("k_P must be >= k_p (one-shot bound is looser)")
        if self.k_l < 2:
            raise ValueError("k_l must be at least 2")
        if self.C < 1:
            raise ValueError("C must be at least 1")
        if not self.passes:
            raise ValueError("at least one cut pass is required")
        for pass_id in self.passes:
            if pass_id not in (1, 2, 3):
                raise ValueError(f"unknown pass id {pass_id}")
        if self.num_random_words < 1:
            raise ValueError("num_random_words must be positive")
        if self.memory_budget_words < 1:
            raise ValueError("memory budget must be positive")
        if self.pattern_strategy not in (
            "random",
            "counting",
            "walking",
            "mixed",
        ):
            raise ValueError(
                f"unknown pattern strategy {self.pattern_strategy!r}"
            )
        if self.cache is not None:
            self.cache.validate()
