"""Equivalence classes from partial simulation (the EC manager of §III-A).

Nodes with identical partial-simulation signatures form an equivalence
class; any functionally equivalent pair must share a class, so classes
are the candidate-pair generator of the sweeping framework.  Signatures
are canonicalised by phase (a node and its complement land in the same
class with opposite phase flags), which is what lets the miter's XOR
structure reduce fully — standard FRAIG behaviour.

:class:`SimulationState` owns the pattern pool: random initial patterns
plus every counter-example found so far.  Patterns are expressed at the
PIs, so the pool survives miter reductions unchanged and classes can be
recomputed for any rewritten miter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.aig.network import Aig
from repro.simulation.bitops import random_words
from repro.simulation.partial import pack_patterns, simulate_words


@dataclass(frozen=True)
class EqClass:
    """One equivalence class.

    ``members`` are node ids in increasing order — the first member is
    the class *representative* (minimum id, as in the paper §II-B).
    ``phases`` holds each member's phase relative to the canonical
    signature; two members ``i, j`` are conjectured equivalent up to
    complementation ``phases[i] ^ phases[j]``.
    """

    members: Tuple[int, ...]
    phases: Tuple[int, ...]

    @property
    def representative(self) -> int:
        """The minimum-id member."""
        return self.members[0]

    def candidate_pairs(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(representative, member, relative_phase)`` triples."""
        repr_node = self.members[0]
        repr_phase = self.phases[0]
        for node, phase in zip(self.members[1:], self.phases[1:]):
            yield repr_node, node, repr_phase ^ phase


class EquivalenceClasses:
    """All non-singleton classes of a network under a signature matrix."""

    def __init__(self, classes: List[EqClass], repr_of: Dict[int, int]):
        self._classes = classes
        self._repr_of = repr_of

    @classmethod
    def from_tables(cls, tables: np.ndarray) -> "EquivalenceClasses":
        """Cluster nodes by canonical signature.

        ``tables`` is the ``(num_nodes, W)`` signature matrix of
        :func:`repro.simulation.partial.simulate_words`.  Node 0 (constant
        false) participates, so constant candidates cluster with it.
        """
        num_nodes, width = tables.shape
        if width == 0:
            raise ValueError("cannot build classes from zero-width signatures")
        phases = (tables[:, 0] & np.uint64(1)).astype(np.int8)
        canonical = np.where(
            phases[:, None].astype(bool), ~tables, tables
        )
        buckets: Dict[bytes, List[int]] = {}
        raw = canonical.tobytes()
        row_bytes = width * 8
        for node in range(num_nodes):
            key = raw[node * row_bytes : (node + 1) * row_bytes]
            buckets.setdefault(key, []).append(node)
        classes: List[EqClass] = []
        repr_of: Dict[int, int] = {}
        for members in buckets.values():
            if len(members) < 2:
                continue
            eq_class = EqClass(
                members=tuple(members),
                phases=tuple(int(phases[m]) for m in members),
            )
            classes.append(eq_class)
            for m in members:
                repr_of[m] = members[0]
        classes.sort(key=lambda c: c.representative)
        return cls(classes, repr_of)

    def __iter__(self) -> Iterator[EqClass]:
        return iter(self._classes)

    def __len__(self) -> int:
        return len(self._classes)

    def representative_of(self, node: int) -> Optional[int]:
        """Representative of the node's class, or None for singletons."""
        return self._repr_of.get(node)

    def is_representative(self, node: int) -> bool:
        """True when the node is its own class representative."""
        return self._repr_of.get(node) == node

    def num_candidate_pairs(self) -> int:
        """Total pairs a sweeping round would need to prove."""
        return sum(len(c.members) - 1 for c in self._classes)

    def all_pairs(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every ``(representative, node, phase)`` candidate pair."""
        for eq_class in self._classes:
            yield from eq_class.candidate_pairs()

    def remap(self, node_map: np.ndarray) -> "EquivalenceClasses":
        """Rewrite the classes through an old-node → new-literal map.

        ``node_map`` is the array map of a structural rebuild
        (:class:`repro.aig.rebuild.RebuildResult`): ``-1`` marks swept
        nodes, merged nodes map onto (possibly complemented) literals of
        their representative.  Because reductions only merge *proved*
        pairs, the result is exactly what
        :meth:`from_tables` would return for the reduced network under
        the same (carried) signature matrix: swept members drop out,
        merged members collapse onto their representative's new id, and
        classes reduced below two members disappear.
        """
        classes: List[EqClass] = []
        repr_of: Dict[int, int] = {}
        for eq_class in self._classes:
            members: List[int] = []
            phases: List[int] = []
            seen = set()
            for member, phase in zip(eq_class.members, eq_class.phases):
                mapped = int(node_map[member])
                if mapped < 0:
                    continue
                node = mapped >> 1
                if node in seen:
                    # The member merged onto an earlier member of this
                    # class (its representative); one row, one entry.
                    continue
                seen.add(node)
                members.append(node)
                phases.append(phase ^ (mapped & 1))
            if len(members) < 2:
                continue
            # The map preserves id order on surviving nodes and merged
            # members collapse onto *earlier* entries, so ``members`` is
            # still ascending and members[0] is the representative.
            remapped = EqClass(tuple(members), tuple(phases))
            classes.append(remapped)
            for node in members:
                repr_of[node] = members[0]
        classes.sort(key=lambda c: c.representative)
        return EquivalenceClasses(classes, repr_of)


def initial_patterns(
    num_pis: int, num_words: int, seed: int, strategy: str = "random"
) -> np.ndarray:
    """Initial simulation pattern words for class initialisation.

    Strategies (the pattern-quality dimension studied by [3], [20]):

    - ``random`` — i.i.d. uniform bits (the default everywhere);
    - ``counting`` — pattern ``p`` is the binary encoding of ``p``
      (exhaustive over the low PIs, constant on the high ones);
    - ``walking`` — a Hamming-distance-1 walk from the all-zeros
      pattern, flipping PI ``p mod num_pis`` at step ``p``;
    - ``mixed`` — half random, quarter counting, quarter walking.
    """
    from repro.simulation.bitops import projection_segment

    rng = np.random.default_rng(seed)
    if strategy == "random":
        return random_words(num_pis, num_words, rng)
    if strategy == "counting":
        words = np.zeros((num_pis, num_words), dtype=np.uint64)
        for i in range(num_pis):
            words[i] = projection_segment(i, 0, num_words)
        return words
    if strategy == "walking":
        patterns = []
        current = [0] * num_pis
        for p in range(num_words * 64):
            patterns.append(tuple(current))
            current[p % num_pis] ^= 1
        return pack_patterns(patterns, num_pis)
    if strategy == "mixed":
        half = max(1, num_words // 2)
        quarter = max(1, (num_words - half) // 2)
        rest = max(1, num_words - half - quarter)
        parts = [
            initial_patterns(num_pis, half, seed, "random"),
            initial_patterns(num_pis, quarter, seed, "counting"),
            initial_patterns(num_pis, rest, seed, "walking"),
        ]
        return np.hstack(parts)
    raise ValueError(f"unknown pattern strategy {strategy!r}")


class SimulationState:
    """Pattern pool + signature tables for the sweeping engine.

    Parameters
    ----------
    num_pis:
        PI count of the miter (constant across reductions).
    num_random_words:
        Number of 64-pattern words used to initialise classes.
    seed:
        RNG seed; engines are deterministic given a seed.
    strategy:
        Initial-pattern strategy; see :func:`initial_patterns`.
    """

    def __init__(
        self,
        num_pis: int,
        num_random_words: int = 32,
        seed: int = 2025,
        strategy: str = "random",
    ) -> None:
        if num_random_words < 1:
            raise ValueError("need at least one random simulation word")
        self.num_pis = num_pis
        self.pi_words = initial_patterns(
            num_pis, num_random_words, seed, strategy
        )
        self._cex_patterns: List[Sequence[int]] = []
        #: Counter-example patterns already folded into ``pi_words`` by a
        #: previous incarnation of this pool (shared-memory adoption).
        self._cex_carried = 0

    @classmethod
    def from_pool(
        cls, num_pis: int, pi_words: np.ndarray, num_cex: int = 0
    ) -> "SimulationState":
        """Wrap an existing pattern-word matrix without regenerating it.

        Used when adopting a pool out of a shared-memory segment: the
        words (random initials plus every CEX found so far) already
        exist, possibly as a read-only view over the segment buffer.
        ``num_cex`` records how many of the packed patterns came from
        counter-examples, so :attr:`num_cex` stays truthful.
        """
        state = cls.__new__(cls)
        state.num_pis = num_pis
        state.pi_words = pi_words
        state._cex_patterns = []
        state._cex_carried = num_cex
        return state

    @property
    def num_patterns(self) -> int:
        """Total simulation patterns in the pool (64 per word)."""
        return self.pi_words.shape[1] * 64

    @property
    def num_cex(self) -> int:
        """Number of counter-example patterns added so far."""
        return len(self._cex_patterns) + getattr(self, "_cex_carried", 0)

    def add_cex_patterns(
        self,
        patterns: Sequence[Sequence[int]],
        distance1: bool = False,
        distance1_limit: int = 64,
    ) -> None:
        """Append counter-example patterns (full PI assignments) to the pool.

        With ``distance1`` enabled, each pattern is additionally expanded
        into its Hamming-distance-1 neighbourhood (up to
        ``distance1_limit`` flipped positions per CEX) — the distance-1
        simulation refinement of [8] the paper lists as a §V extension.
        Neighbours of a distinguishing pattern often distinguish further
        pairs, so classes split faster per CEX.
        """
        fresh = [tuple(p) for p in patterns]
        if not fresh:
            return
        self._cex_patterns.extend(fresh)
        expanded = list(fresh)
        if distance1:
            for pattern in fresh:
                for i in range(min(len(pattern), distance1_limit)):
                    neighbour = list(pattern)
                    neighbour[i] ^= 1
                    expanded.append(tuple(neighbour))
        packed = pack_patterns(expanded, self.num_pis)
        self.pi_words = np.hstack([self.pi_words, packed])

    def tables(self, miter: Aig) -> np.ndarray:
        """Signature matrix of ``miter`` under the current pool."""
        if miter.num_pis != self.num_pis:
            raise ValueError(
                f"miter has {miter.num_pis} PIs, state was built for {self.num_pis}"
            )
        return simulate_words(miter, self.pi_words)

    def classes(self, miter: Aig, tables: Optional[np.ndarray] = None) -> EquivalenceClasses:
        """Equivalence classes of ``miter`` under the current pool."""
        if tables is None:
            tables = self.tables(miter)
        return EquivalenceClasses.from_tables(tables)


@dataclass
class SharedPool:
    """An initial pattern pool generated once and shared read-only.

    The portfolio parent (or the serve daemon) generates the pool a
    single time and ships the word matrix to every simulation worker
    through the :mod:`repro.shm` data plane; each engine then wraps it in
    a *fresh* :class:`SimulationState` instead of regenerating identical
    random words per process.  Sharing only the base ndarray is safe
    because :meth:`SimulationState.add_cex_patterns` hstack-replaces
    ``pi_words`` — the shared matrix is never written in place.

    ``num_cex`` is nonzero when the pool already folded in
    counter-examples from a previous run (warm serving).
    """

    pi_words: np.ndarray
    num_pis: int
    num_random_words: int
    seed: int
    strategy: str
    num_cex: int = 0

    @classmethod
    def generate(
        cls,
        num_pis: int,
        num_random_words: int = 32,
        seed: int = 2025,
        strategy: str = "random",
    ) -> "SharedPool":
        """Generate the initial pool once (the parent-side call)."""
        words = initial_patterns(num_pis, num_random_words, seed, strategy)
        return cls(
            pi_words=words,
            num_pis=num_pis,
            num_random_words=num_random_words,
            seed=seed,
            strategy=strategy,
        )

    def compatible(self, config, num_pis: int) -> bool:
        """True when an engine with ``config`` would generate this pool.

        Engines are deterministic given their pool parameters, so a pool
        is adoptable exactly when the PI count and the three generation
        parameters match — a mismatched pool would silently change the
        engine's verdict trajectory.
        """
        return (
            num_pis == self.num_pis
            and int(config.num_random_words) == self.num_random_words
            and int(config.seed) == self.seed
            and str(config.pattern_strategy) == self.strategy
        )

    def simulation_state(self) -> SimulationState:
        """A fresh :class:`SimulationState` wrapper over the shared words.

        Each run must get its own wrapper: the wrapper's CEX list is
        mutated per run, while the underlying word matrix is shared.
        """
        return SimulationState.from_pool(
            self.num_pis, self.pi_words, num_cex=self.num_cex
        )
