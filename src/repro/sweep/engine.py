"""The simulation-based CEC engine (Fig. 5 flow).

The engine proves miters in three kinds of phases:

- **P** (PO checking): exhaustively simulate simulatable miter POs against
  constant zero, bounded by ``k_P``/``k_p``;
- **G** (global function checking): initialise equivalence classes by
  random partial simulation, then exhaustively check candidate pairs
  whose support union is at most ``k_g``, collecting counter-examples to
  refine classes and merging proved pairs;
- **L** (local function checking, repeated): three passes of cut
  generation with the Table I criteria; pairs are checked over common
  cuts of size ≤ ``k_l`` — identical local functions prove equivalence,
  mismatches are inconclusive (SDCs).  Each phase reduces the miter once,
  so later phases see new structure and new cuts.

If the flow ends with a non-empty miter the result is UNDECIDED and the
reduced miter is returned for an external checker (the paper hands it to
ABC ``&cec``; this package hands it to
:class:`repro.sat.sweeping.SatSweepChecker` via
:class:`repro.portfolio.checker.CombinedChecker`).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.aig.literals import CONST0, lit
from repro.aig.miter import build_miter, miter_is_trivially_unsat
from repro.aig.network import Aig
from repro.aig.transform import cleanup
from repro.aig.traversal import collect_cone, supports_capped
from repro.cache.knowledge import BoundCache, SweepCache
from repro.cuts.common import CommonCutBuffer, common_cuts
from repro.cuts.enumeration import CutEnumerator
from repro.cuts.selection import CutSelector
from repro.obs import get_tracer
from repro.simulation.exhaustive import (
    ExhaustiveSimulator,
    PairStatus,
)
from repro.simulation.merging import merge_windows
from repro.simulation.window import (
    Pair,
    Window,
    build_pair_window,
    build_window,
)
from repro.sweep.classes import SharedPool, SimulationState
from repro.sweep.config import EngineConfig
from repro.sweep.state import SweepState
from repro.sweep.report import (
    EngineReport,
    PhaseRecord,
    PhaseTimer,
    PortfolioReport,
)


class CecStatus(enum.Enum):
    """Verdict of an equivalence check."""

    EQUIVALENT = "equivalent"
    NONEQUIVALENT = "nonequivalent"
    UNDECIDED = "undecided"


@dataclass
class CecResult:
    """Outcome of a CEC engine run.

    ``cex`` is a full PI assignment witnessing nonequivalence (only for
    NONEQUIVALENT).  ``reduced_miter`` carries the residual miter for
    UNDECIDED results so another engine can continue.  ``report`` is an
    :class:`~repro.sweep.report.EngineReport` for single-engine runs and
    a :class:`~repro.sweep.report.PortfolioReport` for portfolio runs.
    """

    status: CecStatus
    cex: Optional[List[int]] = None
    reduced_miter: Optional[Aig] = None
    report: Union[EngineReport, PortfolioReport] = field(
        default_factory=EngineReport
    )
    #: Sweep state of the run (pattern pool, carried signatures and
    #: classes).  Carried so a downstream checker can reuse the refined
    #: equivalence classes — the EC-transfer extension of §V.  A
    #: :class:`~repro.sweep.state.SweepState` for the simulation engine;
    #: plain :class:`SimulationState` producers remain compatible.
    sim_state: Optional[Union["SweepState", "SimulationState"]] = None

    @property
    def is_equivalent(self) -> bool:
        """True when the check proved equivalence."""
        return self.status is CecStatus.EQUIVALENT


class SimSweepEngine:
    """Simulation-based parallel sweeping engine.

    Example
    -------
    >>> from repro.aig import AigBuilder
    >>> b = AigBuilder(); x, y = b.add_pis(2)
    >>> _ = b.add_po(b.add_and(x, y))
    >>> b2 = AigBuilder(); x2, y2 = b2.add_pis(2)
    >>> _ = b2.add_po(b2.lit_not(b2.add_or(b2.lit_not(x2), b2.lit_not(y2))))
    >>> SimSweepEngine().check(b.build(), b2.build()).status.value
    'equivalent'
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        on_phase=None,
        cache: Optional[SweepCache] = None,
        initial_pool: Optional["SharedPool"] = None,
    ) -> None:
        """``on_phase`` is an optional callback invoked with each
        completed :class:`~repro.sweep.report.PhaseRecord` — progress
        reporting for long runs (the CLI's ``--verbose``).  ``cache``
        injects an existing :class:`~repro.cache.SweepCache` (so several
        checkers can share one store); by default the engine builds its
        own from ``config.cache``.  ``initial_pool`` injects a
        pre-generated :class:`~repro.sweep.classes.SharedPool` (typically
        mapped out of a shared-memory segment) so the engine skips
        regenerating the random pattern words — adopted only when
        :meth:`SharedPool.compatible` says the parameters match."""
        self.config = config or EngineConfig()
        self.config.validate()
        self.on_phase = on_phase
        self.cache = (
            cache if cache is not None
            else SweepCache.from_config(self.config.cache)
        )
        self.initial_pool = initial_pool

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(
        self, miter: Aig, stop_after: Optional[str] = None
    ) -> CecResult:
        """Run the Fig. 5 flow on a miter.

        ``stop_after`` truncates the flow for the Fig. 7 experiment:
        ``"P"`` stops after PO checking, ``"PG"`` after the global phase;
        ``None`` (and ``"PGL"``) run the full flow.
        """
        if stop_after not in (None, "P", "PG", "PGL"):
            raise ValueError(f"unknown stop point {stop_after!r}")
        tracer = get_tracer()
        with tracer.span(
            "sim.check_miter", category="engine", initial_ands=miter.num_ands
        ):
            return self._run_flow(miter, stop_after, tracer)

    def _run_flow(
        self, miter: Aig, stop_after: Optional[str], tracer
    ) -> CecResult:
        start = time.perf_counter()
        report = EngineReport(initial_ands=miter.num_ands)
        state = SweepState(
            cleanup(miter),
            num_random_words=self.config.num_random_words,
            seed=self.config.seed,
            strategy=self.config.pattern_strategy,
        )
        pool = self.initial_pool
        if pool is not None and pool.compatible(self.config, state.num_pis):
            # Adopt the pre-generated (possibly shm-mapped) pattern pool
            # instead of regenerating identical random words.
            state.adopt_pool(pool.simulation_state())
            tracer.metrics.counter_add("state.pool_adopted")
        simulator = ExhaustiveSimulator(self.config.memory_budget_words)
        cache_snapshot = (
            self.cache.snapshot() if self.cache is not None else None
        )

        def note(record: PhaseRecord) -> None:
            report.phases.append(record)
            metrics = tracer.metrics
            metrics.counter_add(f"engine.{record.kind}.candidates", record.candidates)
            metrics.counter_add(f"engine.{record.kind}.proved", record.proved)
            metrics.counter_add(f"engine.{record.kind}.cex", record.cex)
            if self.on_phase is not None:
                self.on_phase(record)

        def finish(result: CecResult) -> CecResult:
            current = state.network()
            # ``final_ands`` is the miter size at verdict time: the
            # residue for UNDECIDED, zero for a full proof, and the
            # still-unproved miter for a disproof (a counter-example is
            # not a reduction, so it must not read as 100 %).
            if result.reduced_miter is not None:
                report.final_ands = result.reduced_miter.num_ands
            elif result.status is CecStatus.EQUIVALENT:
                report.final_ands = 0
            else:
                report.final_ands = current.num_ands
            report.total_seconds = time.perf_counter() - start
            report.exhaustive_pairs = simulator.stats.pairs
            if self.cache is not None:
                self.cache.flush()
                report.cache = self.cache.counters.diff(cache_snapshot)
            if tracer.enabled:
                report.metrics = tracer.metrics.as_dict()
            result.report = report
            return result

        verdict = self._structural_verdict(state.network())
        if verdict is not None:
            return finish(verdict)

        # ---- P phase -------------------------------------------------
        record = PhaseRecord("P")
        with tracer.span("phase.P", category="phase") as span, PhaseTimer(
            record
        ):
            outcome = self._po_phase(state, simulator, record)
            span.set("candidates", record.candidates)
            span.set("proved", record.proved)
        if isinstance(outcome, CecResult):
            note(record)
            return finish(outcome)
        record.miter_ands_after = state.network().num_ands
        note(record)
        if miter_is_trivially_unsat(state.network()):
            return finish(CecResult(CecStatus.EQUIVALENT))
        if stop_after == "P":
            # Carry the state: the adaptive scheduler (and the Fig. 7
            # experiment's downstream engines) resume from the P-phase
            # pool and classes instead of re-simulating.
            return finish(
                CecResult(
                    CecStatus.UNDECIDED,
                    reduced_miter=state.network(),
                    sim_state=state,
                )
            )

        # ---- G phase -------------------------------------------------
        record = PhaseRecord("G")
        with tracer.span("phase.G", category="phase") as span, PhaseTimer(
            record
        ):
            outcome = self._global_phase(state, simulator, record)
            span.set("candidates", record.candidates)
            span.set("proved", record.proved)
        if isinstance(outcome, CecResult):
            note(record)
            return finish(outcome)
        record.miter_ands_after = state.network().num_ands
        note(record)
        if miter_is_trivially_unsat(state.network()):
            return finish(CecResult(CecStatus.EQUIVALENT))
        if stop_after == "PG":
            return finish(
                CecResult(
                    CecStatus.UNDECIDED,
                    reduced_miter=state.network(),
                    sim_state=state,
                )
            )

        # ---- repeated L phases ----------------------------------------
        disabled_passes: Set[int] = set()
        for phase_index in range(self.config.max_local_phases):
            record = PhaseRecord("L")
            with tracer.span(
                "phase.L", category="phase", round=phase_index
            ) as span, PhaseTimer(record):
                outcome, progressed = self._local_phase(
                    state, simulator, record, disabled_passes
                )
                span.set("candidates", record.candidates)
                span.set("proved", record.proved)
            if isinstance(outcome, CecResult):
                note(record)
                return finish(outcome)
            record.miter_ands_after = state.network().num_ands
            note(record)
            if miter_is_trivially_unsat(state.network()):
                return finish(CecResult(CecStatus.EQUIVALENT))
            if not progressed:
                break
            if self.config.interleave_rewriting:
                # §V extension: restructure the reduced miter so the next
                # local phase enumerates genuinely new cuts.
                from repro.synth.rewrite import cut_rewrite

                state.replace_network(cut_rewrite(state.network(), k=4))

        return finish(
            CecResult(
                CecStatus.UNDECIDED,
                reduced_miter=state.network(),
                sim_state=state,
            )
        )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _structural_verdict(self, miter: Aig) -> Optional[CecResult]:
        """Verdicts available before any simulation."""
        if miter_is_trivially_unsat(miter):
            return CecResult(CecStatus.EQUIVALENT)
        if any(po == 1 for po in miter.pos):
            # A constant-true PO is satisfied by every pattern.
            return CecResult(CecStatus.NONEQUIVALENT, cex=[0] * miter.num_pis)
        return None

    def _po_phase(
        self,
        state: SweepState,
        simulator: ExhaustiveSimulator,
        record: PhaseRecord,
    ) -> Union[CecResult, Aig]:
        cfg = self.config
        miter = state.network()
        bound = state.bound_cache(self.cache)
        support_sets = supports_capped(miter, cfg.k_P)
        nontrivial = [(i, p) for i, p in enumerate(miter.pos) if p != CONST0]
        po_supports = {
            i: support_sets[p >> 1] for i, p in nontrivial
        }
        one_shot = all(s is not None for s in po_supports.values())
        threshold = cfg.k_P if one_shot else cfg.k_p
        new_pos = list(miter.pos)
        windows: List[Window] = []
        for i, p in nontrivial:
            supp = po_supports[i]
            if supp is None or len(supp) > threshold:
                continue
            record.candidates += 1
            if bound is not None:
                known = bound.lookup_pair(p, CONST0)
                if known is not None:
                    if known.is_equivalent:
                        record.proved += 1
                        new_pos[i] = CONST0
                        continue
                    if known.is_nonequivalent:
                        record.cex += 1
                        return CecResult(
                            CecStatus.NONEQUIVALENT, cex=known.cex
                        )
            windows.append(
                build_window(
                    miter,
                    sorted(supp),
                    roots=[p >> 1] if (p >> 1) not in supp else [],
                    pairs=[Pair(p, CONST0, tag=i)],
                )
            )
        if windows:
            if cfg.window_merging:
                windows = merge_windows(
                    miter, windows, cfg.k_s_for(threshold)
                )
            outcomes = simulator.run(
                miter, windows, collect_cex=True, skip_oversized=True
            )
            for outcome in outcomes:
                if outcome.status is PairStatus.MISMATCH:
                    record.cex += 1
                    cex = outcome.cex.to_pi_pattern(miter.num_pis)
                    if bound is not None:
                        bound.record_nonequivalent(
                            outcome.pair.lit_a, CONST0, cex, context="P"
                        )
                    return CecResult(CecStatus.NONEQUIVALENT, cex=cex)
                record.proved += 1
                if bound is not None:
                    bound.record_equivalent(
                        outcome.pair.lit_a, CONST0, context="P"
                    )
                new_pos[outcome.pair.tag] = CONST0
        return state.set_pos(new_pos)

    def _global_phase(
        self,
        state: SweepState,
        simulator: ExhaustiveSimulator,
        record: PhaseRecord,
    ) -> Optional[CecResult]:
        cfg = self.config
        tracer = get_tracer()
        for iteration in range(cfg.max_global_iterations):
            with tracer.span(
                "phase.G.round", category="phase", round=iteration
            ) as span:
                verdict, progressed = self._global_round(
                    state, simulator, record, span
                )
            if verdict is not None:
                return verdict
            if not progressed:
                break
        return None

    def _global_round(
        self,
        state: SweepState,
        simulator: ExhaustiveSimulator,
        record: PhaseRecord,
        span,
    ) -> Tuple[Optional[CecResult], bool]:
        """One check → refine → reduce cycle of the global phase.

        Returns ``(verdict, progressed)``: a conclusive verdict ends the
        phase, ``progressed=False`` means the round changed nothing and
        the iteration should stop.  Merges are applied to ``state`` in
        place (carrying signatures and classes across the rebuild).
        """
        cfg = self.config
        miter = state.network()
        tables = state.tables()
        disproof = self._po_disproof(miter, state, tables)
        if disproof is not None:
            return disproof, False
        classes = state.classes(tables=tables)
        if len(classes) == 0:
            return None, False
        span.set("classes", len(classes))
        bound = state.bound_cache(self.cache)
        support_sets = supports_capped(miter, cfg.k_g)
        windows: List[Window] = []
        merges: Dict[int, Tuple[int, int]] = {}
        cex_patterns: List[List[int]] = []
        for repr_node, node, phase in classes.all_pairs():
            if bound is not None:
                # Cached knowledge is not bounded by k_g: a pair the
                # cold run proved in a later phase (or by SAT)
                # resolves here on the warm run.
                known = bound.lookup_pair(
                    lit(repr_node), lit(node, phase)
                )
                if known is not None:
                    record.candidates += 1
                    if known.is_equivalent:
                        merges[node] = (repr_node, phase)
                    else:
                        cex_patterns.append(known.cex)
                    continue
            supp_r = support_sets[repr_node]
            supp_n = support_sets[node]
            if supp_r is None or supp_n is None:
                continue
            union = supp_r | supp_n
            if len(union) > cfg.k_g:
                continue
            record.candidates += 1
            windows.append(
                build_pair_window(
                    miter,
                    sorted(union),
                    lit(repr_node),
                    lit(node, phase),
                    node,
                )
            )
        if not windows and not merges and not cex_patterns:
            return None, False
        if windows:
            if cfg.window_merging:
                windows = merge_windows(
                    miter, windows, cfg.k_s_for(cfg.k_g)
                )
            outcomes = simulator.run(
                miter, windows, collect_cex=True, skip_oversized=True
            )
        else:
            outcomes = []
        for outcome in outcomes:
            node = outcome.pair.tag
            if outcome.status is PairStatus.EQUAL:
                target = outcome.pair.lit_a
                phase = (outcome.pair.lit_a ^ outcome.pair.lit_b) & 1
                merges[node] = (target >> 1, phase)
                if bound is not None:
                    bound.record_equivalent(
                        outcome.pair.lit_a, outcome.pair.lit_b,
                        context="G",
                    )
            else:
                pattern = outcome.cex.to_pi_pattern(miter.num_pis)
                cex_patterns.append(pattern)
                if bound is not None:
                    bound.record_nonequivalent(
                        outcome.pair.lit_a, outcome.pair.lit_b,
                        pattern, context="G",
                    )
        record.proved += len(merges)
        record.cex += len(cex_patterns)
        span.set("proved", len(merges))
        span.set("cex", len(cex_patterns))
        if cex_patterns:
            state.add_cex_patterns(
                cex_patterns, distance1=cfg.distance1_cex
            )
        if merges:
            state.apply_merges(merges)
        if not merges and not cex_patterns:
            return None, False
        if miter_is_trivially_unsat(state.network()):
            return None, False
        return None, True

    def _local_phase(
        self,
        state: SweepState,
        simulator: ExhaustiveSimulator,
        record: PhaseRecord,
        disabled_passes: Set[int],
    ) -> Tuple[Optional[CecResult], bool]:
        cfg = self.config
        miter = state.network()
        tables = state.tables()
        disproof = self._po_disproof(miter, state, tables)
        if disproof is not None:
            return disproof, False
        classes = state.classes(tables=tables)
        if len(classes) == 0:
            return None, False
        bound = state.bound_cache(self.cache)
        pair_info: Dict[int, Tuple[int, int]] = {}
        repr_of: Dict[int, int] = {}
        for eq_class in classes:
            for member in eq_class.members:
                repr_of[member] = eq_class.representative
            for repr_node, node, phase in eq_class.candidate_pairs():
                if miter.is_and(node):
                    pair_info[node] = (repr_node, phase)
        record.candidates += len(pair_info)
        fanout_counts = miter.fanout_counts()
        levels = miter.levels()
        merges: Dict[int, Tuple[int, int]] = {}
        proved_by_pass: Dict[int, int] = {}

        if bound is not None:
            # Warm-start pre-pass: settle pairs with cached verdicts
            # before any cut enumeration or window simulation runs.
            cached_patterns: List[List[int]] = []
            for node, (repr_node, phase) in list(pair_info.items()):
                known = bound.lookup_pair(lit(repr_node), lit(node, phase))
                if known is None:
                    continue
                if known.is_equivalent:
                    merges[node] = (repr_node, phase)
                else:
                    cached_patterns.append(known.cex)
                    del pair_info[node]
            if cached_patterns:
                record.cex += len(cached_patterns)
                state.add_cex_patterns(
                    cached_patterns, distance1=cfg.distance1_cex
                )

        for pass_id in cfg.passes:
            if pass_id in disabled_passes:
                continue
            proved_before = len(merges)
            self._run_cut_pass(
                miter,
                simulator,
                pass_id,
                fanout_counts,
                levels,
                repr_of,
                pair_info,
                merges,
                bound,
            )
            proved_by_pass[pass_id] = len(merges) - proved_before

        record.proved += len(merges)
        if cfg.adaptive_passes:
            for pass_id, proved in proved_by_pass.items():
                if proved == 0:
                    disabled_passes.add(pass_id)
        if not merges:
            return None, False
        state.apply_merges(merges)
        return None, True

    def _run_cut_pass(
        self,
        miter: Aig,
        simulator: ExhaustiveSimulator,
        pass_id: int,
        fanout_counts: np.ndarray,
        levels: np.ndarray,
        repr_of: Dict[int, int],
        pair_info: Dict[int, Tuple[int, int]],
        merges: Dict[int, Tuple[int, int]],
        bound: Optional[BoundCache] = None,
    ) -> None:
        cfg = self.config
        tracer = get_tracer()
        selector = CutSelector(
            pass_id, fanout_counts, levels, cfg.similarity_selection
        )
        enumerator = CutEnumerator(miter, cfg.k_l, cfg.C, selector)
        # Only the fanin cones of the surviving pairs (and their
        # representatives) need cuts; late phases with few candidates
        # then skip most of the miter.
        pair_roots = set()
        for node, (repr_node, _phase) in pair_info.items():
            if node not in merges:
                pair_roots.add(node)
                if repr_node != 0:
                    pair_roots.add(repr_node)
        needed = set(collect_cone(miter, pair_roots))

        def flush(windows: List[Window]) -> None:
            outcomes = simulator.run(
                miter, windows, collect_cex=False, skip_oversized=True
            )
            for outcome in outcomes:
                node = outcome.pair.tag
                if outcome.status is PairStatus.EQUAL:
                    if node not in merges:
                        phase = (outcome.pair.lit_a ^ outcome.pair.lit_b) & 1
                        merges[node] = (outcome.pair.lit_a >> 1, phase)
                    if bound is not None and outcome.window is not None:
                        bound.record_equivalent(
                            outcome.pair.lit_a,
                            outcome.pair.lit_b,
                            context="L",
                            cut_size=len(outcome.window.inputs),
                        )
                elif bound is not None and outcome.window is not None:
                    # A local mismatch may be an SDC, so it proves
                    # nothing about the pair — but re-simulating the
                    # same pair over the same cut is futile; memoise it.
                    bound.record_local_mismatch(
                        outcome.pair.lit_a,
                        outcome.pair.lit_b,
                        outcome.window.inputs,
                    )

        buffer = CommonCutBuffer(cfg.buffer_capacity, flush)
        with tracer.span(
            "cuts.pass", category="cuts", pass_id=pass_id
        ) as pass_span:
            for _level, nodes in enumerator.run(repr_of, only=needed):
                batch: List[Window] = []
                for node in nodes:
                    info = pair_info.get(node)
                    if info is None or node in merges:
                        continue
                    repr_node, phase = info
                    if repr_node in merges:
                        continue
                    priority_r = (
                        enumerator.priority_cuts(repr_node)
                        if repr_node != 0
                        else []
                    )
                    priority_n = enumerator.priority_cuts(node)
                    cuts = common_cuts(
                        priority_r,
                        priority_n,
                        cfg.k_l,
                        cfg.max_common_cuts_per_pair,
                    )
                    pair = Pair(lit(repr_node), lit(node, phase), tag=node)
                    for cut in cuts:
                        if bound is not None and bound.local_mismatch_seen(
                            pair.lit_a, pair.lit_b, cut
                        ):
                            continue
                        roots = [
                            x
                            for x in (repr_node, node)
                            if x != 0 and x not in cut
                        ]
                        batch.append(
                            build_window(miter, cut, roots=roots, pairs=[pair])
                        )
                buffer.insert(batch)
            buffer.drain()
            pass_span.set("expansions", enumerator.expansions)
        tracer.metrics.counter_add("cuts.expansions", enumerator.expansions)

    # ------------------------------------------------------------------

    def _po_disproof(
        self, miter: Aig, state: SweepState, tables: np.ndarray
    ) -> Optional[CecResult]:
        """Check whether the random pool already satisfies some miter PO."""
        from repro.sweep.disproof import find_po_disproof

        pattern = find_po_disproof(miter, state.pi_words, tables)
        if pattern is None:
            return None
        return CecResult(CecStatus.NONEQUIVALENT, cex=pattern)
