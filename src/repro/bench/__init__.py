"""Benchmarks: circuit generators, the Table II suite, experiment harness.

The paper evaluates on EPFL arithmetic benchmarks (hyp, log2, multiplier,
sqrt, square, sin, voter) and IWLS'05 control designs (ac97_ctrl,
vga_lcd), enlarged with ABC ``double`` and optimised with ``resyn2``.
This subpackage generates the same circuit *families* from scratch at
interpreter-friendly sizes and reproduces the experimental protocol (see
DESIGN.md §2 for the substitution rationale).
"""

from repro.bench.generators import (
    adder,
    barrel_shifter,
    carry_select_adder,
    control_circuit,
    decoder,
    divider,
    hyp,
    int2float,
    kogge_stone_adder,
    log2,
    max_circuit,
    multiplier,
    priority_encoder,
    sin_cordic,
    sqrt,
    square,
    voter,
    wallace_multiplier,
)
from repro.bench.suite import BenchmarkCase, build_case, default_suite
from repro.bench.harness import (
    Fig6Row,
    Fig7Row,
    Table2Row,
    run_fig6,
    run_fig7,
    run_table2,
    run_table2_case,
)

__all__ = [
    "BenchmarkCase",
    "Fig6Row",
    "Fig7Row",
    "Table2Row",
    "adder",
    "barrel_shifter",
    "build_case",
    "carry_select_adder",
    "control_circuit",
    "decoder",
    "default_suite",
    "divider",
    "hyp",
    "int2float",
    "kogge_stone_adder",
    "log2",
    "max_circuit",
    "multiplier",
    "priority_encoder",
    "wallace_multiplier",
    "run_fig6",
    "run_fig7",
    "run_table2",
    "run_table2_case",
    "sin_cordic",
    "sqrt",
    "square",
    "voter",
]
