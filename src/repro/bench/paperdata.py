"""The paper's published numbers (Table II) and shape comparison.

Absolute runtimes are not reproducible on a different substrate; what
the reproduction checks is the *shape* of each case: how much of the
miter the engine proves on its own, and whether the combined flow beats
the SAT baseline.  This module stores the published values and grades
measured rows against them, feeding EXPERIMENTS.md and the headline
assertions in the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class PaperRow:
    """One benchmark line of the paper's Table II."""

    name: str
    abc_seconds: float
    conformal_seconds: float
    gpu_seconds: float
    reduced_percent: float
    residue_abc_seconds: Optional[float]
    total_seconds: float
    speedup_vs_abc: float
    speedup_vs_conformal: float


#: Table II exactly as published (— residue means fully proved by GPU).
#: The ABC time for log2_10xd is the 122-day timeout the paper uses.
PAPER_TABLE2: Dict[str, PaperRow] = {
    "hyp": PaperRow("hyp_7xd", 7859.26, 406002, 4616.56, 40.2, 418.48, 5035.04, 1.56, 80.64),
    "log2": PaperRow("log2_10xd", 122 * 86400.0, 118392, 119633.18, 100.0, None, 119633.18, 88.11, 0.99),
    "multiplier": PaperRow("multiplier_10xd", 2370.52, 3213, 159.54, 100.0, None, 159.54, 14.86, 20.14),
    "sqrt": PaperRow("sqrt_10xd", 20640.56, 30605, 52.29, 0.7, 20623.24, 20675.53, 1.00, 1.48),
    "square": PaperRow("square_10xd", 1021.40, 2710, 144.35, 100.0, None, 144.35, 7.08, 18.77),
    "voter": PaperRow("voter_10xd", 62610.44, 1166, 54.20, 43.5, 35611.63, 35665.83, 1.76, 0.03),
    "sin": PaperRow("sin_10xd", 2499.28, 2081, 78.88, 100.0, None, 78.88, 31.68, 26.38),
    "ac97_ctrl": PaperRow("ac97_ctrl_10xd", 248.57, 1563, 97.51, 98.9, 22.43, 119.94, 2.07, 13.03),
    "vga_lcd": PaperRow("vga_lcd_5xd", 95.82, 317, 18.51, 20.1, 81.95, 100.46, 0.95, 3.16),
}

#: Published geomean speed-ups.
PAPER_GEOMEAN_VS_ABC = 4.89
PAPER_GEOMEAN_VS_CONFORMAL = 4.88


def reduction_category(percent: float) -> str:
    """Bucket a reduction percentage the way the paper's narrative does."""
    if percent >= 99.9:
        return "full"
    if percent >= 30.0:
        return "partial"
    return "minor"


def paper_family(case_name: str) -> Optional[str]:
    """Map a measured case name (e.g. ``multiplier_1xd``) to a paper row."""
    for family in PAPER_TABLE2:
        if case_name == family or case_name.startswith(family + "_") or (
            case_name.startswith(family) and case_name[len(family):].lstrip("_").endswith("xd")
        ):
            return family
    return None


def shape_agreement(measured_rows: Sequence) -> Dict[str, Dict[str, str]]:
    """Grade measured Table II rows against the paper's shapes.

    For each case the comparison records the paper's and the measured
    reduction categories and whether the combined flow beat the SAT
    baseline in both.  Rows without a matching paper family are skipped.
    """
    comparison: Dict[str, Dict[str, str]] = {}
    for row in measured_rows:
        family = paper_family(row.name)
        if family is None:
            continue
        paper = PAPER_TABLE2[family]
        comparison[row.name] = {
            "paper_reduction": reduction_category(paper.reduced_percent),
            "measured_reduction": reduction_category(row.reduced_percent),
            "paper_beats_sat": "yes" if paper.speedup_vs_abc > 1.05 else "tie",
            "measured_beats_sat": (
                "yes" if row.speedup_vs_abc > 1.05
                else ("tie" if row.speedup_vs_abc > 0.8 else "no")
            ),
        }
    return comparison


def format_shape_agreement(measured_rows: Sequence) -> str:
    """Text table of the shape comparison (used in EXPERIMENTS.md)."""
    comparison = shape_agreement(measured_rows)
    lines = [
        f"{'Case':<18}{'paper red.':>12}{'ours red.':>12}"
        f"{'paper>SAT':>11}{'ours>SAT':>10}"
    ]
    for name, entry in comparison.items():
        lines.append(
            f"{name:<18}{entry['paper_reduction']:>12}"
            f"{entry['measured_reduction']:>12}"
            f"{entry['paper_beats_sat']:>11}{entry['measured_beats_sat']:>10}"
        )
    return "\n".join(lines)
