"""Benchmark circuit generators.

One generator per benchmark family of the paper's Table II:

==============  =====================================================
Paper case      Generator here
==============  =====================================================
hyp             :func:`hyp` — ``sqrt(x² + y²)`` (EPFL hypotenuse)
log2            :func:`log2` — priority encoder + normalised mantissa
multiplier      :func:`multiplier` — unsigned array multiplier
sqrt            :func:`sqrt` — restoring integer square root
square          :func:`square` — ``x²`` with shared operand
sin             :func:`sin_cordic` — fixed-point CORDIC sine
voter           :func:`voter` — n-input majority via popcount
ac97_ctrl       :func:`control_circuit` (shallow, register-mux style)
vga_lcd         :func:`control_circuit` (different seed/profile)
==============  =====================================================

Every generator returns an :class:`~repro.aig.network.Aig` whose
functional semantics are documented and unit-tested against Python
integer arithmetic.
"""

from __future__ import annotations

import random
from typing import List

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, lit_not
from repro.aig.network import Aig
from repro.bench.wordlib import (
    barrel_shift_left,
    constant_word,
    equals_const,
    greater_than_const,
    multiply,
    mux_word,
    popcount,
    ripple_add,
    ripple_sub,
    shift_left_const,
    zero_extend,
)


def adder(width: int) -> Aig:
    """Unsigned ripple-carry adder: ``2*width`` PIs, ``width+1`` POs."""
    b = AigBuilder(name=f"adder{width}")
    xs = b.add_pis(width)
    ys = b.add_pis(width)
    total, carry = ripple_add(b, xs, ys)
    b.add_pos(total + [carry])
    return b.build()


def multiplier(width: int) -> Aig:
    """Unsigned array multiplier: ``2*width`` PIs, ``2*width`` POs."""
    b = AigBuilder(name=f"multiplier{width}")
    xs = b.add_pis(width)
    ys = b.add_pis(width)
    b.add_pos(multiply(b, xs, ys))
    return b.build()


def square(width: int) -> Aig:
    """Squarer ``x²``: ``width`` PIs, ``2*width`` POs (shared operand)."""
    b = AigBuilder(name=f"square{width}")
    xs = b.add_pis(width)
    b.add_pos(multiply(b, xs, xs))
    return b.build()


def sqrt(width: int) -> Aig:
    """Restoring integer square root: ``width`` PIs, ``ceil(width/2)`` POs.

    Classic digit-recurrence: two radicand bits enter the partial
    remainder per iteration; a trial subtraction of ``(root << 2) | 1``
    decides each root bit.  The borrow chains make this the deepest
    generator — matching the paper's sqrt being the hardest case for
    every engine.
    """
    if width % 2:
        width += 1
    b = AigBuilder(name=f"sqrt{width}")
    xs = b.add_pis(width)
    b.add_pos(_sqrt_word(b, list(xs)))
    return b.build()


def log2(width: int) -> Aig:
    """Integer log2 with normalised mantissa.

    POs: ``ceil(log2(width))`` exponent bits (position of the most
    significant set bit; 0 when the input is 0) followed by ``width``
    mantissa bits (the input shifted left so its MSB is at the top).
    Substitutes EPFL's fixed-point log2 with the same structure class:
    priority encoding feeding a barrel shifter.
    """
    b = AigBuilder(name=f"log2_{width}")
    xs = b.add_pis(width)
    exp_bits = max(1, (width - 1).bit_length())
    # Priority encoder: exponent = index of highest set bit.
    exponent = constant_word(0, exp_bits)
    found = CONST0
    for i in range(width - 1, -1, -1):
        is_msb = b.add_and(xs[i], lit_not(found))
        value = constant_word(i, exp_bits)
        exponent = mux_word(b, is_msb, value, exponent)
        found = b.add_or(found, xs[i])
    # Normalised mantissa: shift left by (width - 1 - exponent).
    comp = constant_word(width - 1, exp_bits)
    shift, _ = ripple_sub(b, comp, exponent)
    mantissa = barrel_shift_left(b, xs, shift)
    b.add_pos(exponent + mantissa)
    return b.build()


def sin_cordic(width: int, iterations: int = 0) -> Aig:
    """Fixed-point CORDIC sine: ``width`` PIs (angle), ``width+2`` POs.

    Rotation-mode CORDIC over ``iterations`` stages (default ``width``):
    signed registers x, y start at (K, 0) and rotate by ±arctan(2^-i)
    until the residual angle is exhausted; the y register is the sine.
    Not bit-accurate against math.sin (fixed-point CORDIC never is) —
    tests check the CORDIC recurrence itself in integer arithmetic.
    """
    if iterations <= 0:
        iterations = width
    b = AigBuilder(name=f"sin{width}")
    theta = b.add_pis(width)
    reg_width = width + 2
    # K ≈ 0.607253 scaled to the register width (positive constant).
    k_value = int(0.6072529350088812 * (1 << width))
    x = constant_word(k_value, reg_width)
    y = constant_word(0, reg_width)
    z = [t for t in theta] + [CONST0, CONST0]  # zero-extended angle
    from repro.bench.wordlib import arith_shift_right_const

    for i in range(iterations):
        atan_value = int(round((1 << width) * _atan_pow2(i)))
        atan_word = constant_word(atan_value, reg_width)
        sign = z[-1]  # 1 when z is negative → rotate clockwise
        x_shift = arith_shift_right_const(x, i)
        y_shift = arith_shift_right_const(y, i)
        x_plus, _ = ripple_add(b, x, y_shift)
        x_minus, _ = ripple_sub(b, x, y_shift)
        y_plus, _ = ripple_add(b, y, x_shift)
        y_minus, _ = ripple_sub(b, y, x_shift)
        z_plus, _ = ripple_add(b, z, atan_word)
        z_minus, _ = ripple_sub(b, z, atan_word)
        x = mux_word(b, sign, x_plus, x_minus)
        y = mux_word(b, sign, y_minus, y_plus)
        z = mux_word(b, sign, z_plus, z_minus)
    b.add_pos(y)
    return b.build()


def hyp(width: int) -> Aig:
    """Hypotenuse ``sqrt(x² + y²)``: ``2*width`` PIs (EPFL hyp family).

    Combines both multiplier structure and the sqrt digit recurrence, so
    the miter mixes easy (multiplier) and hard (sqrt) regions — mirroring
    the paper's hyp being only partially reducible.
    """
    b = AigBuilder(name=f"hyp{width}")
    xs = b.add_pis(width)
    ys = b.add_pis(width)
    xx = multiply(b, xs, xs)
    yy = multiply(b, ys, ys)
    total, carry = ripple_add(b, xx, yy)
    radicand = total + [carry, CONST0]
    root = _sqrt_word(b, radicand)
    b.add_pos(root)
    return b.build()


def voter(num_inputs: int) -> Aig:
    """Majority voter: 1 PO that is high when more than half the PIs are.

    EPFL's voter is a 1001-input majority; the generator reproduces the
    structure (popcount reduction tree + threshold comparator) at any
    width.
    """
    b = AigBuilder(name=f"voter{num_inputs}")
    xs = b.add_pis(num_inputs)
    count = popcount(b, xs)
    b.add_po(greater_than_const(b, count, num_inputs // 2))
    return b.build()


def control_circuit(
    num_inputs: int,
    num_outputs: int,
    max_fanin: int = 8,
    num_registers: int = 16,
    seed: int = 1,
    name: str = "control",
) -> Aig:
    """Random-but-structured control logic (ac97_ctrl / vga_lcd family).

    Models the flattened next-state/output logic of a register-file
    controller: an address decoder selects one of ``num_registers``
    register groups, each output is a mux of a few decoded terms and
    small random functions of a bounded input subset.  The result is
    shallow (like the paper's ac97_ctrl at 12 levels), wide, and has many
    small-support outputs plus a few wide ones — the profile that makes
    PO checking effective on control designs.
    """
    rnd = random.Random(seed)
    b = AigBuilder(name=name)
    xs = b.add_pis(num_inputs)
    addr_bits = max(1, (num_registers - 1).bit_length())
    addr = xs[:addr_bits]
    decode = [equals_const(b, addr, v) for v in range(num_registers)]

    def small_function(inputs: List[int], depth: int) -> int:
        pool = list(inputs)
        for _ in range(depth * len(inputs)):
            op = rnd.random()
            a = rnd.choice(pool) ^ rnd.randint(0, 1)
            c = rnd.choice(pool) ^ rnd.randint(0, 1)
            if op < 0.5:
                pool.append(b.add_and(a, c))
            elif op < 0.8:
                pool.append(b.add_or(a, c))
            else:
                pool.append(b.add_xor(a, c))
        return pool[-1]

    outputs = []
    for _ in range(num_outputs):
        subset_size = rnd.randint(2, max_fanin)
        subset = rnd.sample(xs[addr_bits:], min(subset_size, len(xs) - addr_bits))
        data = small_function(subset, depth=2)
        select = rnd.choice(decode)
        alt_subset = rnd.sample(
            xs[addr_bits:], min(rnd.randint(2, max_fanin), len(xs) - addr_bits)
        )
        alt = small_function(alt_subset, depth=1)
        outputs.append(b.add_mux(select, data, alt))
    b.add_pos(outputs)
    return b.build()


def barrel_shifter(width: int) -> Aig:
    """Variable left shifter (the EPFL ``bar`` family).

    PIs: ``width`` data bits then ``ceil(log2(width))`` shift-amount
    bits; POs: the shifted word (bits shifted past the top are lost).
    """
    b = AigBuilder(name=f"bar{width}")
    data = b.add_pis(width)
    amount_bits = max(1, (width - 1).bit_length())
    amount = b.add_pis(amount_bits)
    b.add_pos(barrel_shift_left(b, data, amount))
    return b.build()


def max_circuit(width: int) -> Aig:
    """Two-input unsigned maximum (the EPFL ``max`` family).

    PIs: two ``width``-bit operands; POs: ``max(x, y)`` followed by the
    comparison bit (1 when ``x >= y``).
    """
    b = AigBuilder(name=f"max{width}")
    xs = b.add_pis(width)
    ys = b.add_pis(width)
    _, borrow = ripple_sub(b, xs, ys)
    x_ge_y = lit_not(borrow)  # borrow=1 iff x < y
    b.add_pos(mux_word(b, x_ge_y, xs, ys) + [x_ge_y])
    return b.build()


def decoder(address_bits: int) -> Aig:
    """Full binary decoder (the EPFL ``dec`` family).

    PIs: ``address_bits``; POs: ``2**address_bits`` one-hot lines.
    """
    b = AigBuilder(name=f"dec{address_bits}")
    addr = b.add_pis(address_bits)
    b.add_pos(
        [equals_const(b, addr, v) for v in range(1 << address_bits)]
    )
    return b.build()


def priority_encoder(width: int) -> Aig:
    """Priority encoder (the EPFL ``priority`` family).

    PIs: ``width`` request lines; POs: ``ceil(log2(width))`` index bits
    of the highest-priority (lowest-index) active request, plus a
    ``valid`` bit.
    """
    b = AigBuilder(name=f"priority{width}")
    requests = b.add_pis(width)
    index_bits = max(1, (width - 1).bit_length())
    index = constant_word(0, index_bits)
    found = CONST0
    for i, request in enumerate(requests):
        take = b.add_and(request, lit_not(found))
        index = mux_word(b, take, constant_word(i, index_bits), index)
        found = b.add_or(found, request)
    b.add_pos(index + [found])
    return b.build()


def divider(width: int) -> Aig:
    """Restoring unsigned divider (the EPFL ``div`` family).

    PIs: dividend then divisor (``width`` bits each); POs: quotient then
    remainder.  Division by zero yields quotient = all-ones and
    remainder = dividend, as the restoring recurrence naturally produces.
    """
    b = AigBuilder(name=f"div{width}")
    dividend = b.add_pis(width)
    divisor = b.add_pis(width)
    rem: List[int] = constant_word(0, width + 1)
    quotient: List[int] = []
    divisor_ext = zero_extend(divisor, width + 1)
    for step in range(width - 1, -1, -1):
        rem = [dividend[step]] + rem[: width]
        diff, borrow = ripple_sub(b, rem, divisor_ext)
        fits = lit_not(borrow)
        rem = mux_word(b, fits, diff, rem)
        quotient = [fits] + quotient
    b.add_pos(quotient + rem[:width])
    return b.build()


def int2float(width: int = 16, mantissa_bits: int = 7) -> Aig:
    """Integer to tiny-float conversion (the EPFL ``int2float`` family).

    Normalises a ``width``-bit unsigned integer into (exponent,
    mantissa): exponent = position of the MSB (0 for zero input),
    mantissa = the next ``mantissa_bits`` bits after the implicit
    leading one.  Mirrors the shape of int→float conversion logic:
    priority encoding + barrel shifting + truncation.
    """
    b = AigBuilder(name=f"int2float{width}")
    xs = b.add_pis(width)
    exp_bits = max(1, (width - 1).bit_length())
    exponent = constant_word(0, exp_bits)
    found = CONST0
    for i in range(width - 1, -1, -1):
        is_msb = b.add_and(xs[i], lit_not(found))
        exponent = mux_word(
            b, is_msb, constant_word(i, exp_bits), exponent
        )
        found = b.add_or(found, xs[i])
    shift, _ = ripple_sub(b, constant_word(width - 1, exp_bits), exponent)
    normalised = barrel_shift_left(b, xs, shift)
    mantissa = normalised[width - 1 - mantissa_bits : width - 1]
    b.add_pos(exponent + mantissa + [found])
    return b.build()


def carry_select_adder(width: int, block: int = 4) -> Aig:
    """Carry-select adder: same function as :func:`adder`, different
    architecture.

    Each block computes both carry-in hypotheses in parallel and muxes
    on the incoming carry — shallower than ripple, structurally very
    different, and functionally identical: the classic architectural
    CEC scenario.
    """
    if block < 1:
        raise ValueError("block size must be positive")
    b = AigBuilder(name=f"csel_adder{width}")
    xs = b.add_pis(width)
    ys = b.add_pis(width)
    outs: List[int] = []
    carry = CONST0
    for start in range(0, width, block):
        end = min(start + block, width)
        seg_x = xs[start:end]
        seg_y = ys[start:end]
        sum0, carry0 = ripple_add(b, seg_x, seg_y, CONST0)
        sum1, carry1 = ripple_add(b, seg_x, seg_y, b.lit_not(CONST0))
        outs.extend(mux_word(b, carry, sum1, sum0))
        carry = b.add_mux(carry, carry1, carry0)
    b.add_pos(outs + [carry])
    return b.build()


def kogge_stone_adder(width: int) -> Aig:
    """Kogge–Stone parallel-prefix adder (log-depth carries).

    Third adder architecture: generate/propagate prefix network.  Same
    interface and function as :func:`adder`.
    """
    b = AigBuilder(name=f"ks_adder{width}")
    xs = b.add_pis(width)
    ys = b.add_pis(width)
    generate = [b.add_and(x, y) for x, y in zip(xs, ys)]
    propagate = [b.add_xor(x, y) for x, y in zip(xs, ys)]
    g = list(generate)
    p = list(propagate)
    distance = 1
    while distance < width:
        new_g = list(g)
        new_p = list(p)
        for i in range(distance, width):
            new_g[i] = b.add_or(g[i], b.add_and(p[i], g[i - distance]))
            new_p[i] = b.add_and(p[i], p[i - distance])
        g, p = new_g, new_p
        distance *= 2
    carries = [CONST0] + g[:-1]
    sums = [b.add_xor(prop, c) for prop, c in zip(propagate, carries)]
    b.add_pos(sums + [g[-1]])
    return b.build()


def wallace_multiplier(width: int) -> Aig:
    """Wallace-tree multiplier: same function as :func:`multiplier`.

    Partial products are reduced with 3:2 compressors (full adders)
    until two rows remain, then summed with one ripple adder — the
    standard fast-multiplier topology and a much harder CEC partner for
    the array multiplier than any resynthesised variant.
    """
    b = AigBuilder(name=f"wallace{width}")
    xs = b.add_pis(width)
    ys = b.add_pis(width)
    out_width = 2 * width
    columns: List[List[int]] = [[] for _ in range(out_width)]
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            columns[i + j].append(b.add_and(x, y))
    # 3:2 compression until every column has at most two bits.
    while any(len(col) > 2 for col in columns):
        next_columns: List[List[int]] = [[] for _ in range(out_width)]
        for c, col in enumerate(columns):
            index = 0
            while len(col) - index >= 3:
                s, carry = b.add_full_adder(
                    col[index], col[index + 1], col[index + 2]
                )
                next_columns[c].append(s)
                if c + 1 < out_width:
                    next_columns[c + 1].append(carry)
                index += 3
            if len(col) - index == 2:
                s = b.add_xor(col[index], col[index + 1])
                carry = b.add_and(col[index], col[index + 1])
                next_columns[c].append(s)
                if c + 1 < out_width:
                    next_columns[c + 1].append(carry)
            elif len(col) - index == 1:
                next_columns[c].append(col[index])
        columns = next_columns
    row_a = [col[0] if col else CONST0 for col in columns]
    row_b = [col[1] if len(col) > 1 else CONST0 for col in columns]
    total, _ = ripple_add(b, row_a, row_b)
    b.add_pos(total)
    return b.build()


# ----------------------------------------------------------------------


def _sqrt_word(b: AigBuilder, radicand: List[int]) -> List[int]:
    """Restoring square root of a literal word (shared by sqrt and hyp)."""
    width = len(radicand)
    if width % 2:
        radicand = radicand + [CONST0]
        width += 1
    steps = width // 2
    rem_width = width + 2
    rem: List[int] = constant_word(0, rem_width)
    root: List[int] = []
    for step in range(steps):
        hi = width - 2 * step
        incoming = [radicand[hi - 2], radicand[hi - 1]]
        rem = incoming + rem[: rem_width - 2]
        trial_bits: List[int] = [CONST0] * rem_width
        trial_bits[0] = 1  # the constant-one literal
        for i, bit in enumerate(root):
            if 2 + i < rem_width:
                trial_bits[2 + i] = bit
        diff, borrow = ripple_sub(b, rem, trial_bits)
        fits = lit_not(borrow)
        rem = mux_word(b, fits, diff, rem)
        root = [fits] + root
    return root


def _atan_pow2(i: int) -> float:
    """arctan(2^-i) without importing math at module import time."""
    import math

    return math.atan(2.0 ** -i)
