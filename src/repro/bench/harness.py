"""Experiment harness: regenerates Table II, Fig. 6 and Fig. 7.

Each ``run_*`` function produces plain dataclass rows mirroring the
paper's columns/series, plus text formatters that print them the way the
paper tabulates them.  Absolute times differ from the paper (NumPy vs
CUDA, Python CDCL vs ABC's solver); the claims under reproduction are the
*relative* ones — who wins per case, reduction percentages, phase
breakdown shapes, and the monotone P → PG → PGL improvement.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.suite import BenchmarkCase
from repro.cache.config import CacheConfig
from repro.cache.knowledge import SweepCache
from repro.obs import Tracer, use_tracer
from repro.portfolio.checker import CombinedChecker, PortfolioChecker
from repro.portfolio.parallel import PortfolioError
from repro.sat.sweeping import SatSweepChecker
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine


@dataclass
class Table2Row:
    """One benchmark line of Table II."""

    name: str
    pis: int
    pos: int
    miter_nodes: int
    miter_levels: int
    abc_seconds: float
    abc_status: str
    cfm_seconds: float
    cfm_status: str
    gpu_seconds: float
    reduced_percent: float
    residue_sat_seconds: float
    total_seconds: float
    ours_status: str
    #: Per-engine seconds of the portfolio run (from its
    #: ``PortfolioReport``); empty when the portfolio was skipped.
    cfm_engine_seconds: Dict[str, float] = field(default_factory=dict)
    #: Knowledge-cache counters of the combined run (hits, misses,
    #: stores, …); empty when no cache directory was given.
    cache: Dict[str, int] = field(default_factory=dict)
    #: Per-phase records of the combined run's engine front end
    #: (``PhaseRecord.as_dict()`` each) — the per-row histogram data.
    phases: List[Dict] = field(default_factory=list)
    #: Span summary of the traced combined run
    #: (:meth:`repro.obs.Tracer.summary`).
    trace: Dict = field(default_factory=dict)
    #: Seconds spent in incremental ``SweepState`` rebuilds (sum of the
    #: run's ``rebuild`` spans, workers included).
    rebuild_s: float = 0.0
    #: Carried / (carried + recomputed) signature words of the run —
    #: 1.0 means every reduction carried its knowledge, 0.0 means the
    #: run degenerated to rebuild-from-scratch.
    carryover_ratio: float = 0.0
    #: Shared-memory data-plane counters of the run (segments created/
    #: adopted/leaked, bytes shared vs pickled); empty when no parallel
    #: stage ran or the plane was disabled.
    shm: Dict[str, float] = field(default_factory=dict)
    #: Adaptive-scheduler comparison of the row: cold ``auto`` vs cold
    #: ``fixed`` wall-clock (``speedup`` = fixed/auto), the auto run's
    #: per-lane ``dispatch`` counts, ``mispredicts``, and the batched
    #: SAT lane's ``sat_batch`` pairs/solves.
    sched: Dict[str, object] = field(default_factory=dict)
    #: Cube-and-conquer comparison of the row: the distributed cube
    #: race vs the single-solver monolith on the same raw miter POs —
    #: both wall-clocks, ``speedup`` (mono / race), both statuses, and
    #: the race counters (splits, races, cancellations).  Empty when
    #: the comparison was skipped (``--no-cubes``).
    cube: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits / lookups of the combined run (0.0 without a cache)."""
        lookups = self.cache.get("hits", 0) + self.cache.get("misses", 0)
        return self.cache.get("hits", 0) / lookups if lookups else 0.0

    @property
    def speedup_vs_abc(self) -> float:
        """Speed-up of the combined checker over standalone SAT sweeping."""
        return self.abc_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def speedup_vs_cfm(self) -> float:
        """Speed-up of the combined checker over the portfolio checker."""
        return self.cfm_seconds / self.total_seconds if self.total_seconds else 0.0


@dataclass
class Fig6Row:
    """Phase runtime fractions of the simulation engine (Fig. 6)."""

    name: str
    fractions: Dict[str, float]
    seconds: Dict[str, float]
    #: Knowledge-cache counters of the run; empty without a cache.
    cache: Dict[str, int] = field(default_factory=dict)
    #: Per-phase records (``PhaseRecord.as_dict()`` each).
    phases: List[Dict] = field(default_factory=list)
    #: Span summary of the traced run (:meth:`repro.obs.Tracer.summary`).
    trace: Dict = field(default_factory=dict)
    #: Seconds spent in incremental ``SweepState`` rebuilds.
    rebuild_s: float = 0.0
    #: Carried / (carried + recomputed) signature words of the run.
    carryover_ratio: float = 0.0
    #: Shared-memory data-plane counters of the run; empty when no
    #: parallel stage ran or the plane was disabled.
    shm: Dict[str, float] = field(default_factory=dict)


@dataclass
class ServeRow:
    """One query of the serve-mode benchmark (per round, per case).

    ``latency`` is the client-observed submit→result time (queueing and
    protocol included); ``seconds`` is the worker-side engine time.  The
    cold round pays worker warm-up (cache load, pool generation); the
    warm round measures the steady state the daemon exists for.
    """

    name: str
    round: str
    status: str
    seconds: float
    latency: float
    cache_hits: int
    cache_lookups: int
    worker: int
    #: Counter dict in the shape :func:`bench_payload` aggregates.
    cache: Dict[str, int] = field(default_factory=dict)


@dataclass
class Fig7Row:
    """Normalised SAT time on intermediate miters (Fig. 7).

    ``normalized[flow]`` is (SAT time on the miter left after ``flow``) /
    (SAT time on the original miter); ``flow`` ∈ {"P", "PG", "PGL"}.
    """

    name: str
    standalone_seconds: float
    normalized: Dict[str, float]
    reduced_ands: Dict[str, int]


def _carry_stats(tracer: Tracer) -> Dict[str, float]:
    """Rebuild time and carry-over ratio of one traced run.

    ``rebuild_s`` sums the ``span.rebuild.seconds`` histogram (merged
    worker spans included); the ratio divides carried signature words by
    all words touched at reductions (carried + recomputed — the initial
    full simulations are deliberately excluded: they exist on every
    path, incremental or not).
    """
    histogram = tracer.metrics.histograms.get("span.rebuild.seconds")
    rebuild_s = histogram.total if histogram is not None else 0.0
    counters = tracer.metrics.counters
    carried = counters.get("state.carried_words", 0)
    recomputed = counters.get("state.recomputed_words", 0)
    touched = carried + recomputed
    return {
        "rebuild_s": rebuild_s,
        "carryover_ratio": carried / touched if touched else 0.0,
    }


def _shm_stats(tracer: Tracer) -> Dict[str, float]:
    """Data-plane counters of one traced run, for the row's ``shm`` dict.

    Collects every ``shm.*`` counter plus ``ipc.bytes_pickled`` (the
    queue-side complement needed to judge the zero-copy ratio).  Empty
    when the run never touched the plane — inline engines, or a parallel
    stage with ``REPRO_SHM=0``.
    """
    counters = tracer.metrics.counters
    stats = {
        name: float(value)
        for name, value in counters.items()
        if name.startswith("shm.")
    }
    if stats and "ipc.bytes_pickled" in counters:
        stats["ipc.bytes_pickled"] = float(counters["ipc.bytes_pickled"])
    return stats


def _sched_stats(tracer: Tracer) -> Dict[str, object]:
    """Adaptive-scheduler counters of one traced ``--sched auto`` run.

    Per-lane dispatch counts, mispredictions, and the batched SAT
    lane's pairs/solves (all zero when the P phase settled the miter
    before the dispatcher ever saw a pair)."""
    counters = tracer.metrics.counters
    return {
        "dispatch": {
            lane: int(counters.get(f"sched.dispatch.{lane}", 0))
            for lane in ("sim", "cut", "bdd", "cube", "sat")
        },
        "mispredicts": int(counters.get("sched.mispredict", 0)),
        "sat_batch": {
            "pairs": int(counters.get("sat.batch.pairs", 0)),
            "solves": int(counters.get("sat.batch.solves", 0)),
        },
    }


def _mono_sat_seconds(miter, conflict_limit, time_limit):
    """Single-solver proof of every raw miter PO — the cube race's
    baseline: same queries, one CDCL instance, no splitting, no
    parallelism."""
    from repro.aig.literals import CONST0, lit_is_const
    from repro.sat.cnf import CnfBuilder
    from repro.sat.solver import SatSolver, SolveStatus

    start = time.perf_counter()
    deadline = start + time_limit if time_limit is not None else None
    live_pos = [po for po in miter.pos if po != CONST0]
    if not live_pos:
        return "equivalent", time.perf_counter() - start
    if any(lit_is_const(po) for po in live_pos):
        return "nonequivalent", time.perf_counter() - start
    status = "equivalent"
    for po in live_pos:
        solver = SatSolver()
        cnf = CnfBuilder(miter, solver)
        solver.add_clause([cnf.literal(po)])
        verdict = solver.solve(
            conflict_limit=conflict_limit, deadline=deadline
        )
        if verdict is SolveStatus.SAT:
            status = "nonequivalent"
            break
        if verdict is not SolveStatus.UNSAT:
            status = "unknown"
            break
    return status, time.perf_counter() - start


def _cube_stats(
    miter, conflict_limit, time_limit=None, workers=None
) -> Dict[str, object]:
    """Distributed cube race vs the single-solver monolith on the raw
    miter POs (no sweeping front end on either side, so the comparison
    isolates what splitting + racing buys on the identical queries).

    Returns the row's ``cube`` dict: both wall-clocks, the speedup
    (mono / race), both statuses, and the race counters (splits, races,
    first-winner cancellations).  Conclusive verdicts must agree — the
    comparison doubles as a soundness cross-check.
    """
    from repro.cubes.checker import CubeChecker

    checker = CubeChecker(
        time_limit=time_limit, conflict_limit=conflict_limit,
        workers=workers,
    )
    tracer = Tracer(process_name="bench-cube")
    start = time.perf_counter()
    with use_tracer(tracer):
        race_result = checker.check_miter(miter)
    race_seconds = time.perf_counter() - start
    mono_status, mono_seconds = _mono_sat_seconds(
        miter, conflict_limit, time_limit
    )
    race_status = race_result.status.value
    conclusive = {"equivalent", "nonequivalent"}
    if race_status in conclusive and mono_status in conclusive:
        assert race_status == mono_status, (
            f"cube race disagrees with the single-solver monolith: "
            f"race={race_status}, mono={mono_status}"
        )
    counters = tracer.metrics.counters
    return {
        "race_seconds": race_seconds,
        "mono_seconds": mono_seconds,
        "speedup": mono_seconds / race_seconds if race_seconds else 0.0,
        "race_status": race_status,
        "mono_status": mono_status,
        "splits": int(counters.get("cubes.split", 0)),
        "races": int(counters.get("cubes.races", 0)),
        "cancelled": int(counters.get("cubes.cancelled", 0)),
    }


def run_table2_case(
    case: BenchmarkCase,
    config: Optional[EngineConfig] = None,
    sat_conflict_limit: int = 100_000,
    baseline_time_limit: Optional[float] = None,
    run_portfolio: bool = True,
    parallel_portfolio: bool = False,
    cache: Optional[SweepCache] = None,
    run_cubes: bool = True,
) -> Table2Row:
    """Run all three checkers of Table II on one case.

    ``parallel_portfolio`` runs the commercial-tool stand-in as the
    multiprocess :class:`ParallelPortfolioChecker` instead of the inline
    cascade; the stage is traced so the row's ``shm`` dict reports the
    data-plane traffic (segments, bytes shared vs pickled).
    ``run_cubes`` adds the distributed cube race vs single-solver
    monolith comparison (the row's ``cube`` dict).

    Raises ``AssertionError`` if any conclusive verdicts disagree — the
    harness doubles as an end-to-end cross-check of every engine.
    """
    stats = case.stats()
    miter = case.miter

    abc = SatSweepChecker(
        conflict_limit=sat_conflict_limit, time_limit=baseline_time_limit
    )
    start = time.perf_counter()
    abc_result = abc.check_miter(miter)
    abc_seconds = time.perf_counter() - start

    cfm_engine_seconds: Dict[str, float] = {}
    cfm_shm: Dict[str, float] = {}
    if run_portfolio and parallel_portfolio:
        from repro.portfolio.parallel import ParallelPortfolioChecker

        cfm = ParallelPortfolioChecker(time_limit=baseline_time_limit)
        cfm_tracer = Tracer(process_name=f"bench-cfm:{case.name}")
        start = time.perf_counter()
        try:
            with use_tracer(cfm_tracer):
                cfm_result = cfm.check_miter(miter)
            cfm_status = cfm_result.status.value
        except PortfolioError:
            cfm_result = None
            cfm_status = "failed"
        cfm_seconds = time.perf_counter() - start
        cfm_shm = _shm_stats(cfm_tracer)
        cfm_report = (
            cfm_result.report if cfm_result is not None else None
        )
        if cfm_report is not None and hasattr(cfm_report, "engines"):
            cfm_engine_seconds = {
                rec.name: rec.seconds for rec in cfm_report.engines
            }
    elif run_portfolio:
        cfm = PortfolioChecker(
            sat_checker=SatSweepChecker(
                conflict_limit=sat_conflict_limit,
                time_limit=baseline_time_limit,
            )
        )
        start = time.perf_counter()
        try:
            cfm_result = cfm.check_miter(miter)
            cfm_status = cfm_result.status.value
        except PortfolioError:
            # A fully-failed portfolio is a data point, not a reason to
            # abort the whole table run.
            cfm_result = None
            cfm_status = "failed"
        cfm_seconds = time.perf_counter() - start
        if cfm.report is not None:
            cfm_engine_seconds = {
                rec.name: rec.seconds for rec in cfm.report.engines
            }
    else:
        cfm_seconds = float("nan")
        cfm_status = "skipped"
        cfm_result = None

    # Only "ours" sees the knowledge cache: the baselines must stay cold
    # so the speedup columns compare against uncached engines.
    ours = CombinedChecker(
        config=config,
        sat_checker=SatSweepChecker(conflict_limit=sat_conflict_limit),
        cache=cache,
    )
    tracer = Tracer(process_name=f"bench:{case.name}")
    with use_tracer(tracer):
        ours_result = ours.check_miter(miter)
    cache_counters = (
        ours_result.report.cache.as_dict()
        if getattr(ours_result.report, "cache", None) is not None
        else {}
    )

    # Adaptive-vs-fixed scheduling comparison, both against the same
    # cache state ("ours" already ran auto; a shared suite cache would
    # warm whichever mode runs second, so the comparison pair runs cold).
    fixed_checker = CombinedChecker(
        config=config,
        sat_checker=SatSweepChecker(conflict_limit=sat_conflict_limit),
        sched="fixed",
    )
    start = time.perf_counter()
    fixed_result = fixed_checker.check_miter(miter)
    fixed_seconds = time.perf_counter() - start
    if cache is None:
        auto_result = ours_result
        auto_seconds = ours.timings.total_seconds
        sched_tracer = tracer
    else:
        auto_checker = CombinedChecker(
            config=config,
            sat_checker=SatSweepChecker(conflict_limit=sat_conflict_limit),
        )
        sched_tracer = Tracer(process_name=f"bench-sched:{case.name}")
        start = time.perf_counter()
        with use_tracer(sched_tracer):
            auto_result = auto_checker.check_miter(miter)
        auto_seconds = time.perf_counter() - start
    assert auto_result.status == fixed_result.status, (
        f"scheduler modes disagree on {case.name}: "
        f"auto={auto_result.status}, fixed={fixed_result.status}"
    )
    sched_stats = _sched_stats(sched_tracer)
    sched_stats.update(
        {
            "auto_seconds": auto_seconds,
            "fixed_seconds": fixed_seconds,
            "speedup": fixed_seconds / auto_seconds if auto_seconds else 0.0,
            "status": auto_result.status.value,
        }
    )

    cube_stats: Dict[str, object] = {}
    if run_cubes:
        cube_stats = _cube_stats(
            miter, sat_conflict_limit, time_limit=baseline_time_limit
        )

    verdicts = {
        v
        for v in (
            abc_result.status,
            ours_result.status,
            fixed_result.status,
            cfm_result.status if cfm_result else None,
        )
        if v is not None and v is not CecStatus.UNDECIDED
    }
    assert len(verdicts) <= 1, (
        f"engines disagree on {case.name}: abc={abc_result.status}, "
        f"cfm={cfm_status}, ours={ours_result.status}"
    )

    return Table2Row(
        name=case.name,
        pis=stats["pis"],
        pos=stats["pos"],
        miter_nodes=stats["miter_nodes"],
        miter_levels=stats["miter_levels"],
        abc_seconds=abc_seconds,
        abc_status=abc_result.status.value,
        cfm_seconds=cfm_seconds,
        cfm_status=cfm_status,
        gpu_seconds=ours.timings.engine_seconds,
        reduced_percent=ours.timings.reduction_percent,
        residue_sat_seconds=ours.timings.sat_seconds,
        total_seconds=ours.timings.total_seconds,
        ours_status=ours_result.status.value,
        cfm_engine_seconds=cfm_engine_seconds,
        cache=cache_counters,
        phases=[
            p.as_dict() for p in getattr(ours_result.report, "phases", [])
        ],
        trace=tracer.summary(),
        shm={**cfm_shm, **_shm_stats(tracer)},
        sched=sched_stats,
        cube=cube_stats,
        **_carry_stats(tracer),
    )


def run_table2(
    cases: Sequence[BenchmarkCase],
    config: Optional[EngineConfig] = None,
    cache_dir: Optional[str] = None,
    json_out: Optional[str] = None,
    **kwargs,
) -> List[Table2Row]:
    """Run the Table II comparison over a suite.

    ``cache_dir`` warm-starts the combined checker from a shared
    functional-knowledge cache; ``json_out`` writes the machine-readable
    ``BENCH_table2.json`` payload (see :func:`write_bench_json`).
    """
    cache = _suite_cache(cache_dir)
    rows = [
        run_table2_case(case, config=config, cache=cache, **kwargs)
        for case in cases
    ]
    if json_out is not None:
        write_bench_json(json_out, "table2", rows)
    return rows


def run_fig6(
    cases: Sequence[BenchmarkCase],
    config: Optional[EngineConfig] = None,
    cache_dir: Optional[str] = None,
    json_out: Optional[str] = None,
) -> List[Fig6Row]:
    """Phase runtime breakdown of the simulation engine (Fig. 6)."""
    cache = _suite_cache(cache_dir)
    rows = []
    for case in cases:
        engine = SimSweepEngine(config, cache=cache)
        tracer = Tracer(process_name=f"fig6:{case.name}")
        with use_tracer(tracer):
            result = engine.check_miter(case.miter)
        rows.append(
            Fig6Row(
                name=case.name,
                fractions=result.report.phase_fractions(),
                seconds=result.report.phase_seconds(),
                cache=(
                    result.report.cache.as_dict()
                    if result.report.cache is not None
                    else {}
                ),
                phases=[p.as_dict() for p in result.report.phases],
                trace=tracer.summary(),
                shm=_shm_stats(tracer),
                **_carry_stats(tracer),
            )
        )
    if json_out is not None:
        write_bench_json(json_out, "fig6", rows)
    return rows


def run_fig7(
    cases: Sequence[BenchmarkCase],
    config: Optional[EngineConfig] = None,
    sat_conflict_limit: int = 100_000,
    time_limit: Optional[float] = None,
    json_out: Optional[str] = None,
) -> List[Fig7Row]:
    """SAT time on intermediate miters, normalised (Fig. 7).

    For each case the engine is stopped after P, after PG, and run fully
    (PGL); each residual miter is then proved by the SAT sweeper, and
    times are normalised by the SAT time on the *original* miter.  No
    knowledge cache is offered here: warm-started flows would prove
    pairs for free and the P/PG/PGL comparison would stop measuring the
    phases themselves.
    """
    rows = []
    for case in cases:
        standalone = _sat_seconds(
            case.miter, sat_conflict_limit, time_limit
        )
        normalized: Dict[str, float] = {}
        reduced: Dict[str, int] = {}
        for flow in ("P", "PG", "PGL"):
            engine = SimSweepEngine(config)
            result = engine.check_miter(
                case.miter, stop_after=None if flow == "PGL" else flow
            )
            if result.status is CecStatus.UNDECIDED:
                residue = result.reduced_miter
                seconds = _sat_seconds(
                    residue, sat_conflict_limit, time_limit
                )
                reduced[flow] = residue.num_ands
            else:
                seconds = 0.0
                reduced[flow] = 0
            normalized[flow] = (
                seconds / standalone if standalone > 0 else 0.0
            )
        rows.append(
            Fig7Row(
                name=case.name,
                standalone_seconds=standalone,
                normalized=normalized,
                reduced_ands=reduced,
            )
        )
    if json_out is not None:
        write_bench_json(json_out, "fig7", rows)
    return rows


def run_serve(
    cases: Sequence[BenchmarkCase],
    workers: int = 2,
    cache_root: Optional[str] = None,
    rounds: int = 2,
    json_out: Optional[str] = None,
) -> List[ServeRow]:
    """Benchmark the serve daemon: per-query latency, cold vs warm.

    A real :class:`~repro.serve.server.CecServer` runs on a temporary
    Unix socket (in a helper thread) and every case is submitted through
    :class:`~repro.serve.client.ServeClient` for ``rounds`` rounds — so
    the measured latency includes protocol framing, admission, queueing,
    shm publication, and the engine itself.  Round 0 is the cold round;
    later rounds hit the workers' resident caches and pattern pools.
    """
    import asyncio
    import tempfile
    import threading

    from repro.serve.client import ServeClient
    from repro.serve.server import CecServer

    if rounds < 1:
        raise ValueError("need at least one round")
    rows: List[ServeRow] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as scratch:
        socket_path = os.path.join(scratch, "cec.sock")
        root = cache_root if cache_root is not None else os.path.join(
            scratch, "cache"
        )
        server = CecServer(
            socket_path,
            workers=workers,
            cache_root=root,
            max_pending=max(64, len(cases) * 2),
            max_batch=max(16, len(cases)),
        )
        thread = threading.Thread(
            target=lambda: asyncio.run(server.serve_forever()), daemon=True
        )
        thread.start()
        daemon_stats: Dict = {}
        try:
            with ServeClient(
                socket_path, timeout=None, connect_retries=50
            ) as client:
                for round_index in range(rounds):
                    label = "cold" if round_index == 0 else "warm"
                    records = client.submit_batch(
                        [case.miter for case in cases],
                        names=[case.name for case in cases],
                    )
                    for record in records:
                        hits = int(record["cache_hits"])
                        lookups = int(record["cache_lookups"])
                        rows.append(
                            ServeRow(
                                name=str(record["name"]),
                                round=label,
                                status=str(record["status"]),
                                seconds=float(record["seconds"]),
                                latency=float(record["latency"]),
                                cache_hits=hits,
                                cache_lookups=lookups,
                                worker=int(record["worker"]),
                                cache={
                                    "hits": hits,
                                    "misses": lookups - hits,
                                },
                            )
                        )
                # Snapshot the daemon's own telemetry (respawns, SLO
                # tallies, worker RSS) into the payload before the
                # shutdown tears the pool down — ``check_bench`` gates
                # on the respawn count staying at the baseline's zero.
                daemon_stats = client.stats()
                client.shutdown()
        finally:
            thread.join(timeout=30)
    if json_out is not None:
        write_bench_json(
            json_out, "serve", rows, extra={"daemon": daemon_stats}
        )
    return rows


def latency_percentiles(values: Sequence[float]) -> Dict[str, float]:
    """p50/p90/p99/mean/max of a latency sample (empty → zeros)."""
    if not values:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ordered = sorted(values)

    def pct(q: float) -> float:
        index = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(0, index)]

    return {
        "p50": pct(0.50),
        "p90": pct(0.90),
        "p99": pct(0.99),
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
    }


def _suite_cache(cache_dir: Optional[str]) -> Optional[SweepCache]:
    """One shared knowledge cache for a whole suite run (or ``None``)."""
    if cache_dir is None:
        return None
    return SweepCache(CacheConfig(directory=cache_dir))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (ignores non-positive entries, like the paper's table)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render Table II rows as the paper lays them out."""
    header = (
        f"{'Benchmark':<16}{'#PIs':>7}{'#POs':>7}{'#Nodes':>9}{'Lvl':>6}"
        f"{'SAT(s)':>9}{'Pf(s)':>9}{'Eng(s)':>9}{'Red%':>7}"
        f"{'Res(s)':>9}{'Tot(s)':>9}{'xSAT':>7}{'xPf':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<16}{row.pis:>7}{row.pos:>7}{row.miter_nodes:>9}"
            f"{row.miter_levels:>6}{row.abc_seconds:>9.2f}"
            f"{row.cfm_seconds:>9.2f}{row.gpu_seconds:>9.2f}"
            f"{row.reduced_percent:>7.1f}{row.residue_sat_seconds:>9.2f}"
            f"{row.total_seconds:>9.2f}{row.speedup_vs_abc:>7.2f}"
            f"{row.speedup_vs_cfm:>7.2f}"
        )
    lines.append(
        f"{'Geomean':<16}{'':>47}{'':>25}"
        f"{geomean([r.speedup_vs_abc for r in rows]):>16.2f}"
        f"{geomean([r.speedup_vs_cfm for r in rows if not math.isnan(r.cfm_seconds)]):>7.2f}"
    )
    sched = geomean(
        [float(r.sched.get("speedup", 0.0)) for r in rows if r.sched]
    )
    if sched:
        lines.append(
            f"Scheduler geomean (fixed pipeline / adaptive): {sched:.2f}x"
        )
    return "\n".join(lines)


def format_fig6(rows: Sequence[Fig6Row]) -> str:
    """Render the Fig. 6 phase breakdown as a text table."""
    lines = [f"{'Benchmark':<16}{'P%':>8}{'G%':>8}{'L%':>8}"]
    for row in rows:
        p = 100 * row.fractions.get("P", 0.0)
        g = 100 * row.fractions.get("G", 0.0)
        l = 100 * row.fractions.get("L", 0.0)
        lines.append(f"{row.name:<16}{p:>8.1f}{g:>8.1f}{l:>8.1f}")
    return "\n".join(lines)


def format_fig7(rows: Sequence[Fig7Row]) -> str:
    """Render the Fig. 7 normalised residue-proving times."""
    lines = [
        f"{'Benchmark':<16}{'SAT(s)':>9}{'P':>8}{'PG':>8}{'PGL':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row.name:<16}{row.standalone_seconds:>9.2f}"
            f"{row.normalized['P']:>8.2f}{row.normalized['PG']:>8.2f}"
            f"{row.normalized['PGL']:>8.2f}"
        )
    return "\n".join(lines)


def format_serve(rows: Sequence[ServeRow]) -> str:
    """Render serve-mode rows plus the per-round latency percentiles."""
    lines = [
        f"{'Benchmark':<16}{'Round':>6}{'Status':>14}{'Engine(s)':>11}"
        f"{'Latency(s)':>12}{'Hits':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.name:<16}{row.round:>6}{row.status:>14}"
            f"{row.seconds:>11.3f}{row.latency:>12.3f}{row.cache_hits:>6}"
        )
    for label in ("cold", "warm"):
        sample = [r.latency for r in rows if r.round == label]
        if not sample:
            continue
        stats = latency_percentiles(sample)
        lines.append(
            f"{label} latency: p50 {stats['p50']:.3f}s, "
            f"p90 {stats['p90']:.3f}s, p99 {stats['p99']:.3f}s, "
            f"mean {stats['mean']:.3f}s"
        )
    return "\n".join(lines)


def _sat_seconds(miter, conflict_limit: int, time_limit: Optional[float]):
    checker = SatSweepChecker(
        conflict_limit=conflict_limit, time_limit=time_limit
    )
    start = time.perf_counter()
    checker.check_miter(miter)
    return time.perf_counter() - start


def bench_payload(
    experiment: str, rows: Sequence, extra: Optional[Dict] = None
) -> Dict:
    """Machine-readable payload for one experiment's rows.

    ``rows`` are the dataclass rows of the matching ``run_*`` function.
    Besides the per-row fields the payload carries the suite-level
    aggregates a CI job greps for: speed-up geomeans (Table II) and the
    combined knowledge-cache counters with their hit rate.  ``extra``
    merges additional top-level sections into the payload — ``run_serve``
    ships the daemon's final ``stats`` snapshot as ``daemon`` so the
    regression gate can check respawn counts and SLO tallies.
    """
    serialized = []
    for row in rows:
        record = dataclasses.asdict(row)
        if isinstance(row, Table2Row):
            record["speedup_vs_abc"] = row.speedup_vs_abc
            record["speedup_vs_cfm"] = row.speedup_vs_cfm
            record["cache_hit_rate"] = row.cache_hit_rate
        serialized.append(record)
    payload: Dict = {"experiment": experiment, "rows": serialized}
    if experiment == "serve":
        latency: Dict[str, Dict[str, float]] = {}
        for label in ("cold", "warm"):
            sample = [r.latency for r in rows if r.round == label]
            if sample:
                latency[label] = latency_percentiles(sample)
        payload["latency"] = latency
        cold = latency.get("cold", {}).get("p50", 0.0)
        warm = latency.get("warm", {}).get("p50", 0.0)
        payload["warm_speedup_p50"] = cold / warm if warm > 0 else 0.0
    if experiment == "table2":
        payload["geomeans"] = {
            "speedup_vs_abc": geomean([r.speedup_vs_abc for r in rows]),
            "speedup_vs_cfm": geomean(
                [
                    r.speedup_vs_cfm
                    for r in rows
                    if not math.isnan(r.cfm_seconds)
                ]
            ),
            "sched_speedup": geomean(
                [
                    float(r.sched.get("speedup", 0.0))
                    for r in rows
                    if r.sched
                ]
            ),
            "cube_speedup": geomean(
                [
                    float(r.cube.get("speedup", 0.0))
                    for r in rows
                    if r.cube
                ]
            ),
        }
        # The acceptance headline (adaptive vs fixed pipeline, identical
        # verdicts) also lives at the top level for easy grepping.
        payload["sched_speedup"] = payload["geomeans"]["sched_speedup"]
    totals: Dict[str, int] = {}
    for row in rows:
        for key, value in getattr(row, "cache", {}).items():
            totals[key] = totals.get(key, 0) + value
    lookups = totals.get("hits", 0) + totals.get("misses", 0)
    payload["cache"] = {
        "counters": totals,
        "hit_rate": totals.get("hits", 0) / lookups if lookups else 0.0,
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench_json(
    path: str, experiment: str, rows: Sequence, extra: Optional[Dict] = None
) -> str:
    """Write ``bench_payload`` to disk; returns the path written.

    When ``path`` is a directory the file is named
    ``BENCH_<experiment>.json`` inside it.  The write goes through a
    temporary file and an atomic rename so a crashed run never leaves a
    truncated payload for CI to choke on.
    """
    if os.path.isdir(path):
        path = os.path.join(path, f"BENCH_{experiment}.json")
    payload = bench_payload(experiment, rows, extra=extra)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def main(argv=None) -> int:
    """``python -m repro.bench.harness table2 --profile tiny --json OUT``."""
    import argparse

    from repro.bench.suite import default_suite

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="regenerate Table II / Fig. 6 / Fig. 7 data",
    )
    parser.add_argument(
        "experiment", choices=["table2", "fig6", "fig7", "serve"],
        help="which paper artefact to regenerate (serve: daemon "
        "per-query latency percentiles, cold vs warm)",
    )
    parser.add_argument(
        "--profile", default="tiny",
        help="suite profile (tiny for smoke runs, default for the paper)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None, metavar="CASE",
        help="restrict to the named suite cases",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="OUT",
        help="write BENCH_<experiment>.json (OUT may be a directory)",
    )
    parser.add_argument(
        "--cache", dest="cache_dir", default=None, metavar="DIR",
        help="functional-knowledge cache directory (table2/fig6 only)",
    )
    parser.add_argument(
        "--no-portfolio", action="store_true",
        help="skip the portfolio baseline in table2 (faster smoke runs)",
    )
    parser.add_argument(
        "--no-cubes", action="store_true",
        help="skip the cube race vs monolith comparison in table2",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="serve-mode daemon worker count",
    )
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="serve-mode submission rounds (round 0 is cold)",
    )
    args = parser.parse_args(argv)

    cases = default_suite(args.profile, only=args.only)
    if args.experiment == "table2":
        rows = run_table2(
            cases,
            cache_dir=args.cache_dir,
            json_out=args.json_out,
            run_portfolio=not args.no_portfolio,
            run_cubes=not args.no_cubes,
        )
        print(format_table2(rows))
    elif args.experiment == "fig6":
        rows = run_fig6(
            cases, cache_dir=args.cache_dir, json_out=args.json_out
        )
        print(format_fig6(rows))
    elif args.experiment == "serve":
        rows = run_serve(
            cases,
            workers=args.workers,
            cache_root=args.cache_dir,
            rounds=args.rounds,
            json_out=args.json_out,
        )
        print(format_serve(rows))
    else:
        rows = run_fig7(cases, json_out=args.json_out)
        print(format_fig7(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
