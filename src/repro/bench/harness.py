"""Experiment harness: regenerates Table II, Fig. 6 and Fig. 7.

Each ``run_*`` function produces plain dataclass rows mirroring the
paper's columns/series, plus text formatters that print them the way the
paper tabulates them.  Absolute times differ from the paper (NumPy vs
CUDA, Python CDCL vs ABC's solver); the claims under reproduction are the
*relative* ones — who wins per case, reduction percentages, phase
breakdown shapes, and the monotone P → PG → PGL improvement.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.suite import BenchmarkCase
from repro.portfolio.checker import CombinedChecker, PortfolioChecker
from repro.portfolio.parallel import PortfolioError
from repro.sat.sweeping import SatSweepChecker
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine


@dataclass
class Table2Row:
    """One benchmark line of Table II."""

    name: str
    pis: int
    pos: int
    miter_nodes: int
    miter_levels: int
    abc_seconds: float
    abc_status: str
    cfm_seconds: float
    cfm_status: str
    gpu_seconds: float
    reduced_percent: float
    residue_sat_seconds: float
    total_seconds: float
    ours_status: str
    #: Per-engine seconds of the portfolio run (from its
    #: ``PortfolioReport``); empty when the portfolio was skipped.
    cfm_engine_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup_vs_abc(self) -> float:
        """Speed-up of the combined checker over standalone SAT sweeping."""
        return self.abc_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def speedup_vs_cfm(self) -> float:
        """Speed-up of the combined checker over the portfolio checker."""
        return self.cfm_seconds / self.total_seconds if self.total_seconds else 0.0


@dataclass
class Fig6Row:
    """Phase runtime fractions of the simulation engine (Fig. 6)."""

    name: str
    fractions: Dict[str, float]
    seconds: Dict[str, float]


@dataclass
class Fig7Row:
    """Normalised SAT time on intermediate miters (Fig. 7).

    ``normalized[flow]`` is (SAT time on the miter left after ``flow``) /
    (SAT time on the original miter); ``flow`` ∈ {"P", "PG", "PGL"}.
    """

    name: str
    standalone_seconds: float
    normalized: Dict[str, float]
    reduced_ands: Dict[str, int]


def run_table2_case(
    case: BenchmarkCase,
    config: Optional[EngineConfig] = None,
    sat_conflict_limit: int = 100_000,
    baseline_time_limit: Optional[float] = None,
    run_portfolio: bool = True,
) -> Table2Row:
    """Run all three checkers of Table II on one case.

    Raises ``AssertionError`` if any conclusive verdicts disagree — the
    harness doubles as an end-to-end cross-check of every engine.
    """
    stats = case.stats()
    miter = case.miter

    abc = SatSweepChecker(
        conflict_limit=sat_conflict_limit, time_limit=baseline_time_limit
    )
    start = time.perf_counter()
    abc_result = abc.check_miter(miter)
    abc_seconds = time.perf_counter() - start

    cfm_engine_seconds: Dict[str, float] = {}
    if run_portfolio:
        cfm = PortfolioChecker(
            sat_checker=SatSweepChecker(
                conflict_limit=sat_conflict_limit,
                time_limit=baseline_time_limit,
            )
        )
        start = time.perf_counter()
        try:
            cfm_result = cfm.check_miter(miter)
            cfm_status = cfm_result.status.value
        except PortfolioError:
            # A fully-failed portfolio is a data point, not a reason to
            # abort the whole table run.
            cfm_result = None
            cfm_status = "failed"
        cfm_seconds = time.perf_counter() - start
        if cfm.report is not None:
            cfm_engine_seconds = {
                rec.name: rec.seconds for rec in cfm.report.engines
            }
    else:
        cfm_seconds = float("nan")
        cfm_status = "skipped"
        cfm_result = None

    ours = CombinedChecker(
        config=config,
        sat_checker=SatSweepChecker(conflict_limit=sat_conflict_limit),
    )
    ours_result = ours.check_miter(miter)

    verdicts = {
        v
        for v in (
            abc_result.status,
            ours_result.status,
            cfm_result.status if cfm_result else None,
        )
        if v is not None and v is not CecStatus.UNDECIDED
    }
    assert len(verdicts) <= 1, (
        f"engines disagree on {case.name}: abc={abc_result.status}, "
        f"cfm={cfm_status}, ours={ours_result.status}"
    )

    return Table2Row(
        name=case.name,
        pis=stats["pis"],
        pos=stats["pos"],
        miter_nodes=stats["miter_nodes"],
        miter_levels=stats["miter_levels"],
        abc_seconds=abc_seconds,
        abc_status=abc_result.status.value,
        cfm_seconds=cfm_seconds,
        cfm_status=cfm_status,
        gpu_seconds=ours.timings.engine_seconds,
        reduced_percent=ours.timings.reduction_percent,
        residue_sat_seconds=ours.timings.sat_seconds,
        total_seconds=ours.timings.total_seconds,
        ours_status=ours_result.status.value,
        cfm_engine_seconds=cfm_engine_seconds,
    )


def run_table2(
    cases: Sequence[BenchmarkCase],
    config: Optional[EngineConfig] = None,
    **kwargs,
) -> List[Table2Row]:
    """Run the Table II comparison over a suite."""
    return [run_table2_case(case, config=config, **kwargs) for case in cases]


def run_fig6(
    cases: Sequence[BenchmarkCase],
    config: Optional[EngineConfig] = None,
) -> List[Fig6Row]:
    """Phase runtime breakdown of the simulation engine (Fig. 6)."""
    rows = []
    for case in cases:
        engine = SimSweepEngine(config)
        result = engine.check_miter(case.miter)
        rows.append(
            Fig6Row(
                name=case.name,
                fractions=result.report.phase_fractions(),
                seconds=result.report.phase_seconds(),
            )
        )
    return rows


def run_fig7(
    cases: Sequence[BenchmarkCase],
    config: Optional[EngineConfig] = None,
    sat_conflict_limit: int = 100_000,
    time_limit: Optional[float] = None,
) -> List[Fig7Row]:
    """SAT time on intermediate miters, normalised (Fig. 7).

    For each case the engine is stopped after P, after PG, and run fully
    (PGL); each residual miter is then proved by the SAT sweeper, and
    times are normalised by the SAT time on the *original* miter.
    """
    rows = []
    for case in cases:
        standalone = _sat_seconds(
            case.miter, sat_conflict_limit, time_limit
        )
        normalized: Dict[str, float] = {}
        reduced: Dict[str, int] = {}
        for flow in ("P", "PG", "PGL"):
            engine = SimSweepEngine(config)
            result = engine.check_miter(
                case.miter, stop_after=None if flow == "PGL" else flow
            )
            if result.status is CecStatus.UNDECIDED:
                residue = result.reduced_miter
                seconds = _sat_seconds(
                    residue, sat_conflict_limit, time_limit
                )
                reduced[flow] = residue.num_ands
            else:
                seconds = 0.0
                reduced[flow] = 0
            normalized[flow] = (
                seconds / standalone if standalone > 0 else 0.0
            )
        rows.append(
            Fig7Row(
                name=case.name,
                standalone_seconds=standalone,
                normalized=normalized,
                reduced_ands=reduced,
            )
        )
    return rows


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (ignores non-positive entries, like the paper's table)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render Table II rows as the paper lays them out."""
    header = (
        f"{'Benchmark':<16}{'#PIs':>7}{'#POs':>7}{'#Nodes':>9}{'Lvl':>6}"
        f"{'SAT(s)':>9}{'Pf(s)':>9}{'Eng(s)':>9}{'Red%':>7}"
        f"{'Res(s)':>9}{'Tot(s)':>9}{'xSAT':>7}{'xPf':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<16}{row.pis:>7}{row.pos:>7}{row.miter_nodes:>9}"
            f"{row.miter_levels:>6}{row.abc_seconds:>9.2f}"
            f"{row.cfm_seconds:>9.2f}{row.gpu_seconds:>9.2f}"
            f"{row.reduced_percent:>7.1f}{row.residue_sat_seconds:>9.2f}"
            f"{row.total_seconds:>9.2f}{row.speedup_vs_abc:>7.2f}"
            f"{row.speedup_vs_cfm:>7.2f}"
        )
    lines.append(
        f"{'Geomean':<16}{'':>47}{'':>25}"
        f"{geomean([r.speedup_vs_abc for r in rows]):>16.2f}"
        f"{geomean([r.speedup_vs_cfm for r in rows if not math.isnan(r.cfm_seconds)]):>7.2f}"
    )
    return "\n".join(lines)


def format_fig6(rows: Sequence[Fig6Row]) -> str:
    """Render the Fig. 6 phase breakdown as a text table."""
    lines = [f"{'Benchmark':<16}{'P%':>8}{'G%':>8}{'L%':>8}"]
    for row in rows:
        p = 100 * row.fractions.get("P", 0.0)
        g = 100 * row.fractions.get("G", 0.0)
        l = 100 * row.fractions.get("L", 0.0)
        lines.append(f"{row.name:<16}{p:>8.1f}{g:>8.1f}{l:>8.1f}")
    return "\n".join(lines)


def format_fig7(rows: Sequence[Fig7Row]) -> str:
    """Render the Fig. 7 normalised residue-proving times."""
    lines = [
        f"{'Benchmark':<16}{'SAT(s)':>9}{'P':>8}{'PG':>8}{'PGL':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row.name:<16}{row.standalone_seconds:>9.2f}"
            f"{row.normalized['P']:>8.2f}{row.normalized['PG']:>8.2f}"
            f"{row.normalized['PGL']:>8.2f}"
        )
    return "\n".join(lines)


def _sat_seconds(miter, conflict_limit: int, time_limit: Optional[float]):
    checker = SatSweepChecker(
        conflict_limit=conflict_limit, time_limit=time_limit
    )
    start = time.perf_counter()
    checker.check_miter(miter)
    return time.perf_counter() - start
