"""The Table II benchmark suite.

Reproduces the paper's experimental protocol: each case pairs an original
circuit with its ``resyn2``-optimised version, both enlarged by ``n``
applications of ``double`` ("_nxd" in the case name).  Because the two
copies created by ``double`` are disjoint, optimising before doubling is
structurally equivalent to the paper's doubling-then-optimising and far
cheaper at interpreter speed.

Case widths are chosen so each case keeps its paper *profile* relative
to the scaled engine thresholds (see DESIGN.md §4):

- ``log2`` and ``sin`` have PO supports under ``k_P`` → fully provable in
  the one-shot P phase, as in the paper (Fig. 6);
- ``multiplier``/``square``/``hyp`` exceed ``k_P`` → proved through G and
  L phases;
- ``sqrt`` is deep and SDC-heavy → the engine reduces little;
- ``ac97_ctrl``-like control logic has mostly small-support POs → P
  removes almost everything; the ``vga_lcd``-like profile has more
  wide-support POs → partial reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.aig.builder import AigBuilder
from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.aig.transform import double
from repro.bench import generators as gen
from repro.synth.resyn import compress2, resyn2


@dataclass
class BenchmarkCase:
    """One row of the experimental suite."""

    name: str
    original: Aig
    optimized: Aig
    doublings: int
    _miter: Optional[Aig] = field(default=None, repr=False)

    @property
    def miter(self) -> Aig:
        """The miter of the two circuits (built lazily, cached)."""
        if self._miter is None:
            self._miter = build_miter(
                self.original, self.optimized, name=f"miter_{self.name}"
            )
        return self._miter

    def stats(self) -> Dict[str, int]:
        """Benchmark statistics (the left block of Table II)."""
        return {
            "pis": self.original.num_pis,
            "pos": self.original.num_pos,
            "miter_nodes": self.miter.num_ands,
            "miter_levels": self.miter.depth(),
        }


def build_case(
    name: str,
    factory: Callable[[], Aig],
    doublings: int = 0,
    optimizer: Callable[[Aig], Aig] = resyn2,
) -> BenchmarkCase:
    """Build one suite case: original vs optimised, both doubled."""
    base = factory()
    optimized = optimizer(base)
    case_name = f"{name}_{doublings}xd" if doublings else name
    return BenchmarkCase(
        name=case_name,
        original=double(base, doublings),
        optimized=double(optimized, doublings),
        doublings=doublings,
    )


def _ac97_like() -> Aig:
    """Shallow register-file control logic, mostly small-support POs.

    Two wide-support outputs (a bus parity and an interrupt threshold)
    survive PO checking, reproducing ac97_ctrl's "almost fully reduced,
    tiny residue" profile (98.9 % in Table II).
    """
    base = gen.control_circuit(
        48, 120, max_fanin=6, num_registers=16, seed=97, name="ac97_ctrl"
    )
    builder = AigBuilder(base.num_pis, name="ac97_ctrl")
    mapping = builder.import_cone(base, {pi: 2 * pi for pi in base.pis()})
    for po in base.pos:
        builder.add_po(mapping[po >> 1] ^ (po & 1))
    pis = [2 * pi for pi in base.pis()]
    builder.add_po(builder.add_xor_multi(pis[:28]))
    from repro.bench.wordlib import greater_than_const, popcount

    count = popcount(builder, pis[: 25])
    builder.add_po(greater_than_const(builder, count, 12))
    return builder.build()


def _vga_like() -> Aig:
    """Control logic with a tail of wide-support outputs.

    The wide parity/threshold outputs resist PO checking, giving the
    partial-reduction profile of vga_lcd in Table II.
    """
    base = gen.control_circuit(
        40, 60, max_fanin=6, num_registers=8, seed=11, name="vga_lcd"
    )
    builder = AigBuilder(base.num_pis, name="vga_lcd")
    mapping = builder.import_cone(
        base, {pi: 2 * pi for pi in base.pis()}
    )
    for po in base.pos:
        builder.add_po(mapping[po >> 1] ^ (po & 1))
    # Wide-support outputs: parities and majorities over most PIs.
    pis = [2 * pi for pi in base.pis()]
    builder.add_po(builder.add_xor_multi(pis))
    builder.add_po(builder.add_xor_multi(pis[::2]))
    from repro.bench.wordlib import greater_than_const, popcount

    count = popcount(builder, pis[: 33])
    builder.add_po(greater_than_const(builder, count, 16))
    return builder.build()


#: Bump whenever any profile definition below changes — disk caches of
#: built suites (benchmarks/.cache) are keyed by this version, so stale
#: circuits can never leak into a benchmark run.
SUITE_VERSION = 2

#: Suite profiles: name → (factory, doublings).  ``tiny`` is for unit
#: tests; ``default`` reproduces the Table II shape at Python scale.
SUITE_PROFILES: Dict[str, Dict[str, tuple]] = {
    "tiny": {
        "multiplier": (lambda: gen.multiplier(4), 1),
        "square": (lambda: gen.square(4), 1),
        "sqrt": (lambda: gen.sqrt(8), 0),
        "log2": (lambda: gen.log2(6), 0),
        "sin": (lambda: gen.sin_cordic(6, 4), 0),
        "hyp": (lambda: gen.hyp(4), 0),
        "voter": (lambda: gen.voter(15), 0),
        "ac97_ctrl": (
            lambda: gen.control_circuit(16, 12, seed=97, name="ac97_ctrl"),
            0,
        ),
        "vga_lcd": (
            lambda: gen.control_circuit(14, 10, seed=11, name="vga_lcd"),
            0,
        ),
    },
    "default": {
        "hyp": (lambda: gen.hyp(12), 0),
        "log2": (lambda: gen.log2(16), 1),
        "multiplier": (lambda: gen.multiplier(12), 1),
        "sqrt": (lambda: gen.sqrt(22), 1),
        "square": (lambda: gen.square(20), 1),
        "voter": (lambda: gen.voter(127), 1),
        "sin": (lambda: gen.sin_cordic(12), 1),
        "ac97_ctrl": (_ac97_like, 1),
        "vga_lcd": (_vga_like, 1),
    },
}


def save_case(case: BenchmarkCase, directory) -> None:
    """Persist a case's circuit pair as AIGER files (for caching suites)."""
    import os

    from repro.aig.aiger import write_aiger

    os.makedirs(directory, exist_ok=True)
    write_aiger(case.original, os.path.join(directory, f"{case.name}_orig.aig"))
    write_aiger(case.optimized, os.path.join(directory, f"{case.name}_opt.aig"))


def load_case(directory, case_name: str, doublings: int = 0) -> BenchmarkCase:
    """Load a case previously stored with :func:`save_case`."""
    import os

    from repro.aig.aiger import read_aiger

    original = read_aiger(os.path.join(directory, f"{case_name}_orig.aig"))
    optimized = read_aiger(os.path.join(directory, f"{case_name}_opt.aig"))
    original.name = f"{case_name}_orig"
    optimized.name = f"{case_name}_opt"
    return BenchmarkCase(
        name=case_name,
        original=original,
        optimized=optimized,
        doublings=doublings,
    )


def default_suite(
    profile: str = "default",
    only: Optional[List[str]] = None,
    optimizer: Callable[[Aig], Aig] = None,
) -> List[BenchmarkCase]:
    """Build the full suite (or a named subset) for a profile.

    ``optimizer`` defaults to :func:`repro.synth.resyn.resyn2` for the
    default profile and the faster :func:`~repro.synth.resyn.compress2`
    for the tiny profile.
    """
    if profile not in SUITE_PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; have {sorted(SUITE_PROFILES)}"
        )
    if optimizer is None:
        optimizer = compress2 if profile == "tiny" else resyn2
    cases = []
    for name, (factory, doublings) in SUITE_PROFILES[profile].items():
        if only is not None and name not in only:
            continue
        cases.append(build_case(name, factory, doublings, optimizer))
    return cases
