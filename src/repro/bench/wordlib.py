"""Word-level construction helpers for the benchmark generators.

A *word* is a list of AIG literals, least-significant bit first.  All
helpers take the builder as their first argument and return literal
words; widths are explicit — nothing is implicitly truncated except
where documented.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, CONST1, lit_not

Word = List[int]


def constant_word(value: int, width: int) -> Word:
    """Word holding a constant value."""
    return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]


def zero_extend(word: Sequence[int], width: int) -> Word:
    """Pad a word with constant-0 bits up to ``width``."""
    if len(word) > width:
        raise ValueError("cannot zero-extend to a smaller width")
    return list(word) + [CONST0] * (width - len(word))


def ripple_add(
    b: AigBuilder, xs: Sequence[int], ys: Sequence[int], cin: int = CONST0
) -> Tuple[Word, int]:
    """Ripple-carry addition; returns ``(sum_word, carry_out)``.

    Operands must have equal width (zero-extend first if needed).
    """
    if len(xs) != len(ys):
        raise ValueError("operand widths differ")
    out: Word = []
    carry = cin
    for x, y in zip(xs, ys):
        s, carry = b.add_full_adder(x, y, carry)
        out.append(s)
    return out, carry


def ripple_sub(
    b: AigBuilder, xs: Sequence[int], ys: Sequence[int]
) -> Tuple[Word, int]:
    """Two's complement subtraction ``xs - ys``.

    Returns ``(difference, borrow)`` where ``borrow = 1`` iff
    ``xs < ys`` (unsigned).
    """
    diff, carry = ripple_add(b, xs, [lit_not(y) for y in ys], CONST1)
    return diff, lit_not(carry)


def mux_word(
    b: AigBuilder, sel: int, then_word: Sequence[int], else_word: Sequence[int]
) -> Word:
    """Bitwise 2:1 mux: ``sel ? then_word : else_word``."""
    if len(then_word) != len(else_word):
        raise ValueError("mux operand widths differ")
    return [
        b.add_mux(sel, t, e) for t, e in zip(then_word, else_word)
    ]


def shift_left_const(word: Sequence[int], amount: int, width: int) -> Word:
    """Logical left shift by a constant, truncated to ``width``."""
    shifted = [CONST0] * amount + list(word)
    return zero_extend(shifted[:width], width)


def shift_right_const(word: Sequence[int], amount: int, width: int) -> Word:
    """Logical right shift by a constant, zero filled to ``width``."""
    shifted = list(word[amount:])
    return zero_extend(shifted[:width], width)


def arith_shift_right_const(word: Sequence[int], amount: int) -> Word:
    """Arithmetic right shift by a constant (sign bit replicated)."""
    if amount == 0:
        return list(word)
    sign = word[-1]
    kept = list(word[min(amount, len(word)) :])
    return kept + [sign] * (len(word) - len(kept))


def barrel_shift_left(
    b: AigBuilder, word: Sequence[int], amount_bits: Sequence[int]
) -> Word:
    """Variable left shift: ``word << amount`` truncated to input width."""
    width = len(word)
    current = list(word)
    for i, bit in enumerate(amount_bits):
        shifted = shift_left_const(current, 1 << i, width)
        current = mux_word(b, bit, shifted, current)
    return current


def multiply(
    b: AigBuilder, xs: Sequence[int], ys: Sequence[int]
) -> Word:
    """Array multiplication; result width is ``len(xs) + len(ys)``."""
    width = len(xs) + len(ys)
    acc = constant_word(0, width)
    for i, y_bit in enumerate(ys):
        partial = [b.add_and(x, y_bit) for x in xs]
        padded = shift_left_const(partial, i, width)
        acc, _ = ripple_add(b, acc, padded)
    return acc


def popcount(b: AigBuilder, bits: Sequence[int]) -> Word:
    """Population count via a full-adder reduction tree.

    Returns a word of width ``ceil(log2(len(bits)+1))``.
    """
    if not bits:
        return [CONST0]
    words: List[Word] = [[bit] for bit in bits]
    while len(words) > 1:
        ordered = sorted(words, key=len)
        a = ordered[0]
        c = ordered[1]
        rest = ordered[2:]
        width = max(len(a), len(c)) + 1
        total, carry = ripple_add(
            b, zero_extend(a, width - 1), zero_extend(c, width - 1)
        )
        words = rest + [total + [carry]]
    return words[0]


def greater_than_const(
    b: AigBuilder, word: Sequence[int], value: int
) -> int:
    """Literal of the comparison ``word > value`` (unsigned)."""
    threshold = constant_word(value, len(word))
    _, borrow = ripple_sub(b, threshold, list(word))
    # borrow = 1 iff value < word.
    return borrow


def equals_const(b: AigBuilder, word: Sequence[int], value: int) -> int:
    """Literal of the comparison ``word == value``."""
    terms = []
    for i, bit in enumerate(word):
        terms.append(bit if (value >> i) & 1 else lit_not(bit))
    return b.add_and_multi(terms)
