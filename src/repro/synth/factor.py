"""Algebraic factoring of SOP covers.

Turns a cube cover into a factored expression tree by recursively
dividing out the most frequent literal (quick-factor style).  The tree
uses a tiny tagged-tuple grammar:

- ``("const", 0|1)``
- ``("lit", var_index, phase)``  — ``phase = 1`` is the negated literal
- ``("and", left, right)``
- ``("or", left, right)``

:func:`expr_to_aig` instantiates a tree in an
:class:`~repro.aig.builder.AigBuilder` over given leaf literals, and
:func:`expr_cost` counts the AND gates a tree will need — the gain
estimate used by cut rewriting.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, CONST1, lit_not

Cube = Tuple[Tuple[int, int], ...]
Expr = tuple


def factor_cubes(cubes: List[Cube]) -> Expr:
    """Factor a cover into an expression tree.

    The empty cover is constant false; a cover containing the empty cube
    is constant true (the empty cube subsumes everything).
    """
    if not cubes:
        return ("const", 0)
    if any(len(cube) == 0 for cube in cubes):
        return ("const", 1)
    return _factor(list(cubes))


def _factor(cubes: List[Cube]) -> Expr:
    if len(cubes) == 1:
        return _cube_expr(cubes[0])
    counts = Counter(literal for cube in cubes for literal in cube)
    (best_lit, best_count), = counts.most_common(1)
    if best_count <= 1:
        # No common literal: balanced OR of the cubes.
        exprs = [_cube_expr(cube) for cube in cubes]
        return _balanced("or", exprs)
    divisible = [c for c in cubes if best_lit in c]
    remainder = [c for c in cubes if best_lit not in c]
    quotients = [
        tuple(l for l in cube if l != best_lit) for cube in divisible
    ]
    if any(len(q) == 0 for q in quotients):
        factored = ("lit", best_lit[0], best_lit[1])
    else:
        factored = (
            "and",
            ("lit", best_lit[0], best_lit[1]),
            _factor(quotients),
        )
    if not remainder:
        return factored
    return ("or", factored, _factor(remainder))


def _cube_expr(cube: Cube) -> Expr:
    literals = [("lit", var, phase) for var, phase in cube]
    if not literals:
        return ("const", 1)
    return _balanced("and", literals)


def _balanced(op: str, exprs: List[Expr]) -> Expr:
    while len(exprs) > 1:
        nxt = []
        for i in range(0, len(exprs) - 1, 2):
            nxt.append((op, exprs[i], exprs[i + 1]))
        if len(exprs) % 2:
            nxt.append(exprs[-1])
        exprs = nxt
    return exprs[0]


def expr_to_aig(
    expr: Expr, builder: AigBuilder, leaves: Sequence[int]
) -> int:
    """Instantiate an expression tree; returns the root literal.

    ``leaves[i]`` is the builder literal standing for variable ``i``.
    """
    tag = expr[0]
    if tag == "const":
        return CONST1 if expr[1] else CONST0
    if tag == "lit":
        literal = leaves[expr[1]]
        return lit_not(literal) if expr[2] else literal
    left = expr_to_aig(expr[1], builder, leaves)
    right = expr_to_aig(expr[2], builder, leaves)
    if tag == "and":
        return builder.add_and(left, right)
    if tag == "or":
        return builder.add_or(left, right)
    raise ValueError(f"unknown expression tag {tag!r}")


def expr_cost(expr: Expr) -> int:
    """Number of AND gates the tree needs (OR = one AND in an AIG)."""
    tag = expr[0]
    if tag in ("const", "lit"):
        return 0
    return 1 + expr_cost(expr[1]) + expr_cost(expr[2])


def eval_expr(expr: Expr, values: Sequence[int]) -> int:
    """Evaluate a tree under a 0/1 assignment (reference for tests)."""
    tag = expr[0]
    if tag == "const":
        return expr[1]
    if tag == "lit":
        return values[expr[1]] ^ expr[2]
    left = eval_expr(expr[1], values)
    right = eval_expr(expr[2], values)
    return (left & right) if tag == "and" else (left | right)
