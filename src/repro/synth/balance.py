"""AND-tree balancing (ABC ``balance``).

Rebuilds the network bottom-up, flattening chains of single-fanout,
non-complemented AND nodes into multi-input conjunctions and re-building
each conjunction as a delay-balanced tree (Huffman-style: always combine
the two shallowest operands).  Depth drops, functionality is preserved.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, lit, lit_var
from repro.aig.network import Aig


def balance(aig: Aig) -> Aig:
    """Return a functionally equivalent, depth-balanced network."""
    fanout = aig.fanout_counts()
    builder = AigBuilder(aig.num_pis, name=aig.name)
    new_lit: Dict[int, int] = {0: CONST0}
    level: Dict[int, int] = {0: 0}
    for pi in aig.pis():
        new_lit[pi] = lit(pi)
        level[pi] = 0

    def mk_and(a: int, b: int) -> int:
        result = builder.add_and(a, b)
        var = result >> 1
        if var not in level:
            level[var] = max(level[a >> 1], level[b >> 1]) + 1
        return result

    def conjuncts(node: int) -> List[int]:
        """Leaves of the maximal single-fanout AND tree rooted at ``node``."""
        leaves: List[int] = []
        stack = list(aig.fanins(node))
        while stack:
            edge = stack.pop()
            var = edge >> 1
            if (
                (edge & 1) == 0
                and aig.is_and(var)
                and fanout[var] == 1
            ):
                stack.extend(aig.fanins(var))
            else:
                leaves.append(edge)
        return leaves

    # Nodes absorbed into a parent's conjunction never need their own
    # rebuilt literal; detect them up front (single fanout through a
    # non-complemented edge into an AND).
    absorbed = [False] * aig.num_nodes
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for i in range(aig.num_ands):
        for edge in (int(f0s[i]), int(f1s[i])):
            var = edge >> 1
            if (edge & 1) == 0 and aig.is_and(var) and fanout[var] == 1:
                absorbed[var] = True

    tiebreak = count()
    for node in aig.ands():
        if absorbed[node]:
            continue
        heap = []
        for edge in conjuncts(node):
            mapped = new_lit[edge >> 1] ^ (edge & 1)
            heapq.heappush(
                heap, (level[mapped >> 1], next(tiebreak), mapped)
            )
        while len(heap) > 1:
            _, _, a = heapq.heappop(heap)
            _, _, b = heapq.heappop(heap)
            merged = mk_and(a, b)
            heapq.heappush(
                heap, (level[merged >> 1], next(tiebreak), merged)
            )
        new_lit[node] = heap[0][2]

    for po in aig.pos:
        var = lit_var(po)
        if var not in new_lit:
            raise AssertionError(
                f"PO references absorbed node {var}; fanout accounting is wrong"
            )
        builder.add_po(new_lit[var] ^ (po & 1))
    from repro.aig.transform import cleanup

    return cleanup(builder.build(), name=aig.name)
