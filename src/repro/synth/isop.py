"""Irredundant sum-of-products via the Minato–Morreale procedure.

Truth tables here are plain Python integers: bit ``i`` is the function
value under the assignment encoding ``i`` (same convention as
:mod:`repro.simulation.bitops`, variable 0 least significant).  Arbitrary
precision integers make the Shannon cofactoring one-liners and keep the
module dependency-free.

A *cube* is represented as a tuple of ``(var_index, phase)`` pairs with
``phase = 1`` meaning the negated literal; the empty tuple is the
constant-true cube.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

Cube = Tuple[Tuple[int, int], ...]


def tt_mask(num_vars: int) -> int:
    """All-ones truth table of ``num_vars`` variables."""
    return (1 << (1 << num_vars)) - 1


@lru_cache(maxsize=1024)
def tt_var(var: int, num_vars: int) -> int:
    """Projection truth table of variable ``var`` as an integer."""
    if not 0 <= var < num_vars:
        raise ValueError(f"variable {var} out of range for {num_vars} vars")
    block = (1 << (1 << var))
    pattern_width = 2 << var
    pattern = ((block - 1) << (1 << var))
    # Repeat the pattern across the whole table.
    table = 0
    for offset in range(0, 1 << num_vars, pattern_width):
        table |= pattern << offset
    return table


def cofactors(table: int, var: int, num_vars: int) -> Tuple[int, int]:
    """Negative and positive Shannon cofactors (both full-width tables)."""
    proj = tt_var(var, num_vars)
    mask = tt_mask(num_vars)
    neg = table & ~proj & mask
    pos = table & proj
    shift = 1 << var
    # Spread each half over both halves so the cofactor is var-independent.
    neg = neg | (neg << shift)
    pos = pos | (pos >> shift)
    return neg & mask, pos & mask


def isop(table: int, num_vars: int) -> List[Cube]:
    """Irredundant SOP cover of an exact function.

    Runs Minato–Morreale with lower bound = upper bound = ``table``; the
    resulting cover is irredundant and single-output prime.
    """
    mask = tt_mask(num_vars)
    table &= mask
    cubes, cover = _isop(table, table, num_vars, num_vars)
    assert cover == table, "ISOP cover must equal the function exactly"
    return cubes


def _isop(lower: int, upper: int, var_count: int, num_vars: int):
    """Return (cubes, cover) with lower ≤ cover ≤ upper."""
    if lower == 0:
        return [], 0
    full = tt_mask(num_vars)
    if upper == full:
        return [()], full
    # Pick the highest variable both bounds still depend on.
    var = var_count - 1
    while var >= 0:
        l0, l1 = cofactors(lower, var, num_vars)
        u0, u1 = cofactors(upper, var, num_vars)
        if l0 != l1 or u0 != u1:
            break
        var -= 1
    if var < 0:
        # Constant-on-support function not caught above (lower nonzero,
        # upper not full, but no dependence): cover with one cube.
        return [()], full
    l0, l1 = cofactors(lower, var, num_vars)
    u0, u1 = cofactors(upper, var, num_vars)

    # Cubes needed only where var = 0 / var = 1.
    cubes0, cover0 = _isop(l0 & ~u1 & full, u0, var, num_vars)
    cubes1, cover1 = _isop(l1 & ~u0 & full, u1, var, num_vars)
    # Remaining minterms can be covered without var.
    new_lower = (l0 & ~cover0 & full) | (l1 & ~cover1 & full)
    cubes_star, cover_star = _isop(new_lower, u0 & u1, var, num_vars)

    proj = tt_var(var, num_vars)
    cover = (cover0 & ~proj) | (cover1 & proj) | cover_star
    cubes = (
        [cube + ((var, 1),) for cube in cubes0]
        + [cube + ((var, 0),) for cube in cubes1]
        + cubes_star
    )
    return cubes, cover & full


def eval_cubes(cubes: List[Cube], num_vars: int) -> int:
    """Truth table of a cube cover (for verification)."""
    mask = tt_mask(num_vars)
    table = 0
    for cube in cubes:
        cube_tt = mask
        for var, phase in cube:
            proj = tt_var(var, num_vars)
            cube_tt &= (proj ^ mask) if phase else proj
        table |= cube_tt
    return table & mask


def sop_to_expr(cubes: List[Cube]):
    """Convert a cover to the expression form of :mod:`repro.synth.factor`.

    Returns ``("const", 0)`` for the empty cover and delegates factoring
    of multi-cube covers to :func:`repro.synth.factor.factor_cubes`.
    """
    from repro.synth.factor import factor_cubes

    return factor_cubes(cubes)
