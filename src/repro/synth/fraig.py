"""Functionally reduced AIGs (FRAIGs, [7] in the paper).

A FRAIG is an AIG in which no two nodes are functionally equivalent (up
to complementation).  Sweeping a *miter* is exactly fraiging it; this
module applies the same machinery to a single network as a synthesis
operation — the way logic tools use ``fraig`` to remove redundancy
before mapping.

Two provers are offered:

- :func:`fraig` — SAT-based, the classic construction;
- :func:`fraig_sim` — exhaustive-simulation-based, this paper's thesis
  applied to fraiging: pairs whose support union is small are proved by
  whole-truth-table comparison, no SAT involved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.aig.literals import lit
from repro.aig.network import Aig
from repro.aig.transform import cleanup
from repro.aig.traversal import supports_capped
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver, SolveStatus
from repro.simulation.exhaustive import ExhaustiveSimulator, PairStatus
from repro.simulation.merging import merge_windows
from repro.simulation.window import Pair, build_window
from repro.sweep.classes import SimulationState
from repro.sweep.reduction import reduce_miter


def fraig(
    aig: Aig,
    conflict_limit: int = 10_000,
    num_random_words: int = 16,
    seed: int = 2025,
    max_rounds: int = 8,
) -> Aig:
    """SAT-based functional reduction; returns an equivalent network.

    Candidate pairs come from simulation classes; each is checked by a
    conflict-limited CDCL query.  Unresolved pairs (budget exhausted)
    simply stay unmerged — the result is always functionally equivalent
    to the input, merely possibly not fully reduced.
    """
    current = cleanup(aig)
    state = SimulationState(current.num_pis, num_random_words, seed)
    for _ in range(max_rounds):
        tables = state.tables(current)
        classes = state.classes(current, tables)
        pairs = list(classes.all_pairs())
        if not pairs:
            break
        solver = SatSolver()
        cnf = CnfBuilder(current, solver)
        merges: Dict[int, Tuple[int, int]] = {}
        cex_patterns: List[List[int]] = []
        for repr_node, node, phase in pairs:
            status = _check_pair_sat(
                solver, cnf, lit(repr_node), lit(node, phase), conflict_limit
            )
            if status is SolveStatus.UNSAT:
                merges[node] = (repr_node, phase)
            elif status is SolveStatus.SAT:
                cex_patterns.append(cnf.pi_pattern_from_model())
        if cex_patterns:
            state.add_cex_patterns(cex_patterns)
        if merges:
            current, _ = reduce_miter(current, merges)
        if not merges and not cex_patterns:
            break
    return current


def fraig_sim(
    aig: Aig,
    k_g: int = 14,
    num_random_words: int = 16,
    seed: int = 2025,
    max_rounds: int = 8,
    memory_budget_words: int = 1 << 22,
    window_merging: bool = True,
) -> Aig:
    """Simulation-based functional reduction (no SAT).

    The G-phase prover of the paper's engine applied as a synthesis
    pass: pairs with support union ≤ ``k_g`` are proved by exhaustive
    simulation; wider pairs are left alone.  Sound by construction —
    every merge is backed by a complete truth-table comparison.
    """
    current = cleanup(aig)
    state = SimulationState(current.num_pis, num_random_words, seed)
    simulator = ExhaustiveSimulator(memory_budget_words)
    for _ in range(max_rounds):
        tables = state.tables(current)
        classes = state.classes(current, tables)
        supports = supports_capped(current, k_g)
        windows = []
        for repr_node, node, phase in classes.all_pairs():
            supp_r = supports[repr_node]
            supp_n = supports[node]
            if supp_r is None or supp_n is None:
                continue
            union = supp_r | supp_n
            if len(union) > k_g:
                continue
            roots = [
                x for x in (repr_node, node) if x != 0 and x not in union
            ]
            windows.append(
                build_window(
                    current,
                    sorted(union),
                    roots,
                    [Pair(lit(repr_node), lit(node, phase), tag=node)],
                )
            )
        if not windows:
            break
        if window_merging:
            windows = merge_windows(current, windows, k_g)
        outcomes = simulator.run(current, windows, collect_cex=True)
        merges: Dict[int, Tuple[int, int]] = {}
        cex_patterns: List[List[int]] = []
        for outcome in outcomes:
            if outcome.status is PairStatus.EQUAL:
                phase = (outcome.pair.lit_a ^ outcome.pair.lit_b) & 1
                merges[outcome.pair.tag] = (outcome.pair.lit_a >> 1, phase)
            elif outcome.cex is not None:
                cex_patterns.append(
                    outcome.cex.to_pi_pattern(current.num_pis)
                )
        if cex_patterns:
            state.add_cex_patterns(cex_patterns)
        if merges:
            current, _ = reduce_miter(current, merges)
        if not merges and not cex_patterns:
            break
    return current


def _check_pair_sat(
    solver: SatSolver,
    cnf: CnfBuilder,
    lit_a: int,
    lit_b: int,
    conflict_limit: int,
) -> SolveStatus:
    sol_a = cnf.literal(lit_a)
    sol_b = cnf.literal(lit_b)
    selector = solver.new_var()
    sel = selector << 1
    solver.add_clause([sel ^ 1, sol_a, sol_b])
    solver.add_clause([sel ^ 1, sol_a ^ 1, sol_b ^ 1])
    status = solver.solve(assumptions=[sel], conflict_limit=conflict_limit)
    solver.add_clause([sel ^ 1])
    if status is SolveStatus.UNSAT:
        solver.add_clause([sol_a, sol_b ^ 1])
        solver.add_clause([sol_a ^ 1, sol_b])
    return status
