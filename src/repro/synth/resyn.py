"""Optimisation scripts (ABC ``resyn2`` / ``compress2`` substitutes).

``resyn2`` in ABC is ``b; rw; rf; b; rw; rw; b; rfz; rwz; b`` — alternating
balancing, rewriting and refactoring passes.  The scripts here mirror
that structure with this package's transforms; the paper's experimental
protocol optimises each benchmark with resyn2 and checks it against the
original.
"""

from __future__ import annotations

from repro.aig.network import Aig
from repro.synth.balance import balance
from repro.synth.rewrite import cut_rewrite


def resyn2(aig: Aig, refactor_k: int = 8) -> Aig:
    """The resyn2-like script: ``b; rw; rf; b; rw; rw; b; rfz; rwz; b``."""
    result = balance(aig)
    result = cut_rewrite(result, k=4)
    result = cut_rewrite(result, k=refactor_k)
    result = balance(result)
    result = cut_rewrite(result, k=4)
    result = cut_rewrite(result, k=4)
    result = balance(result)
    result = cut_rewrite(result, k=refactor_k, zero_gain=True)
    result = cut_rewrite(result, k=4, zero_gain=True)
    result = balance(result)
    return result


def compress2(aig: Aig, refactor_k: int = 8) -> Aig:
    """A lighter script (``b; rw; rf; b; rw; b``) for quick experiments."""
    result = balance(aig)
    result = cut_rewrite(result, k=4)
    result = cut_rewrite(result, k=refactor_k)
    result = balance(result)
    result = cut_rewrite(result, k=4)
    return balance(result)
