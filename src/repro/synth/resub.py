"""Exact resubstitution for small-PI networks ([13] in the paper).

Resubstitution re-expresses a node as a simple function of *existing*
nodes (divisors), freeing the node's exclusive fanin cone.  This
implementation is exact: it computes every node's global truth table
(hence the PI bound) and only applies rewrites whose functions match
bit-for-bit.

Supported resubstitutions:

- **0-resub** — replace a node by an equivalent existing node (possibly
  complemented); this is fraiging expressed through truth tables;
- **1-resub** — ``n = d1 OP d2`` for ``OP`` ∈ {AND, OR, XOR} over
  divisors and their complements.

Divisors of a node are earlier nodes whose support is contained in the
node's support; the candidate count per node is capped to bound the
quadratic pair search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, lit, lit_var
from repro.aig.network import Aig
from repro.aig.transform import cleanup
from repro.aig.traversal import supports
from repro.synth.isop import tt_mask, tt_var

#: Hard cap on PI count — tables are ``2**num_pis`` bits.
MAX_PIS = 16


def resubstitute(
    aig: Aig,
    max_divisors: int = 48,
    allow_one_resub: bool = True,
) -> Aig:
    """One exact resubstitution pass; returns an equivalent network.

    Raises ``ValueError`` when the network has more than :data:`MAX_PIS`
    primary inputs (exact global tables would be intractable).
    """
    if aig.num_pis > MAX_PIS:
        raise ValueError(
            f"exact resubstitution supports at most {MAX_PIS} PIs "
            f"(got {aig.num_pis})"
        )
    num_pis = aig.num_pis
    mask = tt_mask(num_pis)
    tables = _global_tables(aig)
    support_sets = supports(aig)
    fanout = aig.fanout_counts()

    builder = AigBuilder(num_pis, name=aig.name)
    new_lit: Dict[int, int] = {0: CONST0}
    table_to_node: Dict[int, int] = {0: CONST0}
    for pi in aig.pis():
        new_lit[pi] = lit(pi)
        table_to_node[tables[pi]] = lit(pi)
        table_to_node[tables[pi] ^ mask] = lit(pi) ^ 1
    divisor_pool: List[Tuple[int, frozenset]] = [
        (pi, frozenset((pi,))) for pi in aig.pis()
    ]

    f0l, f1l = aig.fanin_lists()
    for node in aig.ands():
        table = tables[node]
        replacement = table_to_node.get(table)
        if replacement is None and allow_one_resub:
            replacement = _try_one_resub(
                node,
                table,
                mask,
                tables,
                support_sets,
                divisor_pool,
                new_lit,
                builder,
                max_divisors,
            )
        if replacement is None:
            a = new_lit[f0l[node] >> 1] ^ (f0l[node] & 1)
            b = new_lit[f1l[node] >> 1] ^ (f1l[node] & 1)
            replacement = builder.add_and(a, b)
        new_lit[node] = replacement
        if table not in table_to_node:
            table_to_node[table] = replacement
            table_to_node[table ^ mask] = replacement ^ 1
        divisor_pool.append((node, frozenset(support_sets[node])))
    for po in aig.pos:
        builder.add_po(new_lit[lit_var(po)] ^ (po & 1))
    return cleanup(builder.build(), name=aig.name)


def _global_tables(aig: Aig) -> List[int]:
    """Exact global truth tables (ints) of every node."""
    num_pis = aig.num_pis
    mask = tt_mask(num_pis)
    tables: List[int] = [0] * aig.num_nodes
    for pi in aig.pis():
        tables[pi] = tt_var(pi - 1, num_pis)
    f0l, f1l = aig.fanin_lists()
    for node in aig.ands():
        t0 = tables[f0l[node] >> 1] ^ (mask if f0l[node] & 1 else 0)
        t1 = tables[f1l[node] >> 1] ^ (mask if f1l[node] & 1 else 0)
        tables[node] = t0 & t1
    return tables


def _try_one_resub(
    node: int,
    target: int,
    mask: int,
    tables: List[int],
    support_sets,
    divisor_pool,
    new_lit: Dict[int, int],
    builder: AigBuilder,
    max_divisors: int,
) -> Optional[int]:
    node_support = set(support_sets[node])
    divisors: List[int] = []
    for candidate, candidate_support in reversed(divisor_pool):
        if candidate_support <= node_support:
            divisors.append(candidate)
            if len(divisors) >= max_divisors:
                break
    for i, da in enumerate(divisors):
        ta = tables[da]
        for db in divisors[i + 1 :]:
            tb = tables[db]
            for pa in (0, 1):
                xa = ta ^ (mask if pa else 0)
                for pb in (0, 1):
                    xb = tb ^ (mask if pb else 0)
                    la = new_lit[da] ^ pa
                    lb = new_lit[db] ^ pb
                    if (xa & xb) == target:
                        return builder.add_and(la, lb)
                    if (xa | xb) == target:
                        return builder.add_or(la, lb)
            if (ta ^ tb) == target:
                return builder.add_xor(new_lit[da], new_lit[db])
            if (ta ^ tb ^ mask) == target:
                return builder.add_xnor(new_lit[da], new_lit[db])
    return None
