"""Logic synthesis substrate (the ABC ``resyn2`` substitute).

The paper's experimental protocol compares an original circuit against
its ABC-``resyn2``-optimised version.  This subpackage provides the
equivalent transforms built from scratch:

- :mod:`repro.synth.balance` — AND-tree balancing (ABC ``balance``);
- :mod:`repro.synth.isop` — Minato–Morreale irredundant SOP extraction;
- :mod:`repro.synth.factor` — algebraic factoring of SOPs;
- :mod:`repro.synth.rewrite` — cut-based resynthesis (ABC ``rewrite`` /
  ``refactor``, parameterised by cut size);
- :mod:`repro.synth.resyn` — the ``resyn2``-like script combining them.

All transforms preserve functional equivalence; tests verify this by
miter checking and exhaustive evaluation on small circuits.
"""

from repro.synth.balance import balance
from repro.synth.isop import isop, sop_to_expr
from repro.synth.factor import factor_cubes
from repro.synth.fraig import fraig, fraig_sim
from repro.synth.npn import npn_canon, npn_equivalent
from repro.synth.resub import resubstitute
from repro.synth.rewrite import cut_rewrite
from repro.synth.resyn import resyn2, compress2

__all__ = [
    "balance",
    "compress2",
    "cut_rewrite",
    "factor_cubes",
    "fraig",
    "fraig_sim",
    "isop",
    "npn_canon",
    "npn_equivalent",
    "resubstitute",
    "resyn2",
    "sop_to_expr",
]
