"""Cut-based resynthesis (ABC ``rewrite``/``refactor`` substitute).

For every AND node the pass enumerates small cuts, extracts the node's
local function as a truth table, re-synthesises it as a factored-form
AIG (ISOP → algebraic factoring) and replaces the node when the
replacement is estimated to save nodes.  With ``k = 4`` this behaves
like ABC ``rewrite``; with larger cuts (``k = 8..12``) it behaves like
``refactor`` — both restructure logic locally, which is exactly the kind
of transformation the paper's local function checking is designed to
re-prove (§III-C, Fig. 2).

The gain estimate compares the node's MFFC w.r.t. the cut (nodes that
die when the node is re-expressed over the cut) against the factored
form's AND-gate cost, discounted by structural-hash hits in the partially
rebuilt network.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, lit, lit_var
from repro.aig.network import Aig
from repro.aig.transform import cleanup
from functools import lru_cache

from repro.synth.factor import Expr, expr_to_aig, factor_cubes
from repro.synth.isop import isop, tt_mask, tt_var


@lru_cache(maxsize=1 << 16)
def factored_expression(table: int, num_vars: int) -> Expr:
    """Memoised ISOP + factoring of a truth table.

    Local functions repeat massively across a network (carry chains,
    mux patterns), so caching by raw truth table alone removes most of
    the resynthesis cost of a rewrite pass.
    """
    return factor_cubes(isop(table, num_vars))

Cut = Tuple[int, ...]


def cut_rewrite(
    aig: Aig,
    k: int = 4,
    cuts_per_node: int = 6,
    zero_gain: bool = False,
) -> Aig:
    """One resynthesis pass; returns an equivalent network.

    Parameters
    ----------
    k:
        Maximum cut size (4 ≈ ABC ``rewrite``, 8-12 ≈ ``refactor``).
    cuts_per_node:
        How many cuts are kept per node during enumeration.
    zero_gain:
        Accept replacements that neither gain nor lose nodes; useful to
        perturb structure (ABC's ``rewrite -z``).
    """
    if k < 2:
        raise ValueError("cut size must be at least 2")
    cuts = _enumerate_cuts(aig, k, cuts_per_node)
    fanout_sets = _fanout_nodes(aig)
    builder = AigBuilder(aig.num_pis, name=aig.name)
    new_lit: Dict[int, int] = {0: CONST0}
    for pi in aig.pis():
        new_lit[pi] = lit(pi)

    for node in aig.ands():
        f0, f1 = aig.fanins(node)
        default = builder.find_and(
            new_lit[f0 >> 1] ^ (f0 & 1), new_lit[f1 >> 1] ^ (f1 & 1)
        )
        best_gain = 0 if default is not None else None
        best_plan: Optional[Tuple[Expr, Cut]] = None
        for cut in cuts[node]:
            if len(cut) < 2:
                continue
            table = _local_tt(aig, node, cut)
            expr = factored_expression(table, len(cut))
            leaves = [new_lit[c] for c in cut]
            cost = _dry_cost(builder, expr, leaves)
            saved = _mffc_size(aig, node, cut, fanout_sets)
            gain = saved - cost
            if (
                best_gain is None
                or gain > best_gain
                or (zero_gain and gain == best_gain and best_plan is None)
            ):
                best_gain = gain
                best_plan = (expr, cut)
        use_replacement = best_plan is not None and (
            default is None or best_gain > 0 or (zero_gain and best_gain >= 0)
        )
        if use_replacement:
            expr, cut = best_plan
            leaves = [new_lit[c] for c in cut]
            new_lit[node] = expr_to_aig(expr, builder, leaves)
        elif default is not None:
            new_lit[node] = default
        else:
            new_lit[node] = builder.add_and(
                new_lit[f0 >> 1] ^ (f0 & 1), new_lit[f1 >> 1] ^ (f1 & 1)
            )

    for po in aig.pos:
        builder.add_po(new_lit[lit_var(po)] ^ (po & 1))
    return cleanup(builder.build(), name=aig.name)


# ----------------------------------------------------------------------
# Cut enumeration (size-priority, local to this pass)
# ----------------------------------------------------------------------


def _enumerate_cuts(
    aig: Aig, k: int, per_node: int
) -> List[List[Cut]]:
    cuts: List[List[Cut]] = [[] for _ in range(aig.num_nodes)]
    for pi in aig.pis():
        cuts[pi] = [(pi,)]
    for node in aig.ands():
        f0, f1 = aig.fanins(node)
        choices0 = cuts[f0 >> 1] + [(f0 >> 1,)]
        choices1 = cuts[f1 >> 1] + [(f1 >> 1,)]
        merged = set()
        for u in choices0:
            u_set = set(u)
            for v in choices1:
                union = u_set | set(v)
                if len(union) <= k:
                    merged.add(tuple(sorted(union)))
        ranked = sorted(merged, key=lambda c: (len(c), c))
        cuts[node] = ranked[:per_node]
    return cuts


def _local_tt(aig: Aig, node: int, cut: Cut) -> int:
    """Truth table (int) of ``node`` in terms of ``cut``."""
    tables: Dict[int, int] = {0: 0}
    num_vars = len(cut)
    mask = tt_mask(num_vars)
    for i, leaf in enumerate(cut):
        tables[leaf] = tt_var(i, num_vars)
    stack = [node]
    order: List[int] = []
    seen = set(cut) | {0}
    while stack:
        current = stack.pop()
        if current in seen or current in tables:
            continue
        f0, f1 = aig.fanins(current)
        pending = [
            v for v in (f0 >> 1, f1 >> 1) if v not in tables and v not in seen
        ]
        if pending:
            stack.append(current)
            stack.extend(pending)
        else:
            order.append(current)
            t0 = tables[f0 >> 1] ^ (mask if f0 & 1 else 0)
            t1 = tables[f1 >> 1] ^ (mask if f1 & 1 else 0)
            tables[current] = t0 & t1
            seen.add(current)
    return tables[node]


def _fanout_nodes(aig: Aig) -> List[set]:
    """Fanout node sets; PO references appear as the sentinel -1."""
    fanouts: List[set] = [set() for _ in range(aig.num_nodes)]
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for i in range(aig.num_ands):
        node = base + i
        fanouts[f0s[i] >> 1].add(node)
        fanouts[f1s[i] >> 1].add(node)
    for po in aig.pos:
        fanouts[lit_var(po)].add(-1)
    return fanouts


def _mffc_size(
    aig: Aig, node: int, cut: Cut, fanout_sets: List[set]
) -> int:
    """Nodes freed when ``node`` is re-expressed over ``cut``.

    Counts the cone members (cut-exclusive TFI of ``node``) whose every
    fanout lies inside the cone — the node itself always counts.
    """
    cut_set = set(cut)
    cone = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current in cone or current in cut_set or not aig.is_and(current):
            continue
        cone.add(current)
        f0, f1 = aig.fanins(current)
        stack.append(f0 >> 1)
        stack.append(f1 >> 1)
    freed = 0
    for member in cone:
        if member == node or fanout_sets[member] <= cone:
            freed += 1
    return freed


def _dry_cost(
    builder: AigBuilder, expr: Expr, leaves: Sequence[int]
) -> int:
    """AND gates a factored form would add, given current strash contents."""
    cost, _ = _dry_eval(builder, expr, leaves)
    return cost


def _dry_eval(
    builder: AigBuilder, expr: Expr, leaves: Sequence[int]
) -> Tuple[int, Optional[int]]:
    tag = expr[0]
    if tag == "const":
        return 0, (1 if expr[1] else 0)
    if tag == "lit":
        literal = leaves[expr[1]]
        return 0, (literal ^ 1 if expr[2] else literal)
    cost_l, lit_l = _dry_eval(builder, expr[1], leaves)
    cost_r, lit_r = _dry_eval(builder, expr[2], leaves)
    cost = cost_l + cost_r
    if lit_l is None or lit_r is None:
        return cost + 1, None
    if tag == "or":
        lit_l ^= 1
        lit_r ^= 1
    found = builder.find_and(lit_l, lit_r)
    if found is None:
        return cost + 1, None
    return cost, (found ^ 1 if tag == "or" else found)
