"""NPN canonicalisation of small Boolean functions.

Two functions are NPN-equivalent when one can be obtained from the other
by Negating inputs, Permuting inputs and/or Negating the output.  Cut
rewriting engines (ABC's ``rewrite`` [32]) classify cut functions by NPN
class so one precomputed implementation serves the whole class; the
exhaustive canonicaliser here supports up to 5 inputs (5! · 2⁵ · 2 = 7680
transforms), which covers the k=4 rewriting regime with room to spare.

Truth tables are integers in the convention of :mod:`repro.synth.isop`.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterator, Tuple

from repro.synth.isop import tt_mask

#: A transform: (permutation, input negation mask, output negation).
Transform = Tuple[Tuple[int, ...], int, int]


def apply_permutation(table: int, num_vars: int, perm: Tuple[int, ...]) -> int:
    """Reorder inputs: new input ``i`` is old input ``perm[i]``."""
    result = 0
    for index in range(1 << num_vars):
        source = 0
        for new_pos in range(num_vars):
            if (index >> new_pos) & 1:
                source |= 1 << perm[new_pos]
        if (table >> source) & 1:
            result |= 1 << index
    return result


def apply_input_negation(table: int, num_vars: int, mask: int) -> int:
    """Complement the inputs selected by ``mask``."""
    result = 0
    for index in range(1 << num_vars):
        if (table >> (index ^ mask)) & 1:
            result |= 1 << index
    return result


def transform_table(table: int, num_vars: int, transform: Transform) -> int:
    """Apply a full NPN transform to a truth table."""
    perm, neg_mask, out_neg = transform
    result = apply_permutation(table, num_vars, perm)
    result = apply_input_negation(result, num_vars, neg_mask)
    if out_neg:
        result ^= tt_mask(num_vars)
    return result


@lru_cache(maxsize=8)
def materialized_transforms(num_vars: int) -> Tuple[Transform, ...]:
    """The full transform group of ``num_vars`` inputs, as a cached tuple.

    The group is tiny (7680 entries at 5 vars) but rebuilding the nested
    permutation/mask product on every canonicalisation dominated
    ``npn_canon`` misses; memoising the materialised tuple makes repeat
    walks of the group a plain list iteration.
    """
    return tuple(
        (perm, neg_mask, out_neg)
        for perm in itertools.permutations(range(num_vars))
        for neg_mask in range(1 << num_vars)
        for out_neg in (0, 1)
    )


def all_transforms(num_vars: int) -> Iterator[Transform]:
    """Every NPN transform of ``num_vars`` inputs."""
    yield from materialized_transforms(num_vars)


@lru_cache(maxsize=1 << 16)
def npn_canon(table: int, num_vars: int) -> Tuple[int, Transform]:
    """Canonical representative of a function's NPN class.

    Returns ``(canonical_table, transform)`` where applying ``transform``
    to ``table`` yields ``canonical_table`` (the numerically smallest
    table in the class).  Functions are NPN-equivalent iff their
    canonical tables are equal.
    """
    if num_vars > 5:
        raise ValueError("exhaustive NPN canonicalisation supports <= 5 vars")
    table &= tt_mask(num_vars)
    best = None
    best_transform: Transform = (tuple(range(num_vars)), 0, 0)
    for transform in materialized_transforms(num_vars):
        candidate = transform_table(table, num_vars, transform)
        if best is None or candidate < best:
            best = candidate
            best_transform = transform
    assert best is not None
    return best, best_transform


def npn_equivalent(table_a: int, table_b: int, num_vars: int) -> bool:
    """True when the two functions share an NPN class."""
    return npn_canon(table_a, num_vars)[0] == npn_canon(table_b, num_vars)[0]


def npn_class_count(num_vars: int) -> int:
    """Number of NPN classes of ``num_vars``-input functions.

    Exhaustive (2^2^k functions) — only sensible for ``num_vars <= 4``,
    where the classic counts are 1, 2, 4, 14, 222.
    """
    if num_vars > 4:
        raise ValueError("class counting is exhaustive; use <= 4 vars")
    seen = set()
    for table in range(1 << (1 << num_vars)):
        seen.add(npn_canon(table, num_vars)[0])
    return len(seen)
