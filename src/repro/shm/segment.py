"""Shared-memory segments: the zero-copy unit of the data plane.

A :class:`Segment` wraps one ``multiprocessing.shared_memory`` block and
gives it a tiny on-buffer header (magic, format version, lifecycle
state, an advisory refcount) followed by a 64-byte-aligned payload of
packed numpy arrays.  The lifecycle is the ownership protocol the whole
plane is built on:

- **create** — the owner allocates the block and may write the payload;
- **publish** — the owner freezes the payload and issues a
  :class:`SegmentDescriptor`, a tiny picklable handle (name + array
  table + metadata) that crosses process boundaries instead of the
  payload itself;
- **adopt** — a peer attaches by name and maps the arrays as read-only
  numpy views: no bytes are copied, the kernel shares the pages;
- **release** — an adopter drops its mapping (and its advisory ref).

Unlinking is *not* part of adopt/release: exactly one process — the
registry owner, in practice the portfolio parent — reaps every segment
of a run (:meth:`repro.shm.registry.SegmentRegistry.reap`), so a worker
that is SIGKILLed mid-publish can never strand a block.  The refcount is
advisory bookkeeping (surfaced through the ``shm.*`` counters), not a
destruction trigger; pure-Python processes cannot atomically
read-modify-write a shared integer, and the single-reaper model does not
need them to.

Python's ``multiprocessing.resource_tracker`` would otherwise unlink
every segment at interpreter shutdown (with a noisy warning per block);
create/attach therefore bypass tracker registration entirely — the
registry is the component responsible for reaping.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

try:  # gate so the module imports on builds without shared memory
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "ArraySpec",
    "SegmentDescriptor",
    "Segment",
    "SegmentHeader",
    "ShmUnavailableError",
    "shm_available",
    "build_layout",
    "peek_header",
    "HEADER_BYTES",
]

#: Magic bytes identifying a data-plane segment.
MAGIC = b"RSM1"

#: Bump when the header or packing layout changes incompatibly.
#: Version 2 added the run-owner pid (crash forensics + orphan reaping).
FORMAT_VERSION = 2

#: Header layout: magic (4s), version (H), state (H), refcount (q),
#: payload bytes (q), run-owner pid (q); the payload starts at the next
#: 64-byte boundary.
_HEADER = struct.Struct("<4sHHqqq")
HEADER_BYTES = 64

_ALIGN = 64

#: Lifecycle states stored in the header.
STATE_CREATED = 1
STATE_PUBLISHED = 2


class ShmUnavailableError(RuntimeError):
    """Raised when the platform offers no POSIX shared memory."""


@dataclass(frozen=True)
class SegmentHeader:
    """Decoded on-buffer header of a data-plane segment."""

    magic: bytes
    version: int
    state: int
    refcount: int
    nbytes: int
    owner_pid: int

    @property
    def valid(self) -> bool:
        return self.magic == MAGIC and self.version == FORMAT_VERSION


def peek_header(path: str) -> Optional[SegmentHeader]:
    """Decode a segment header straight from its ``/dev/shm`` file.

    Lets the orphan reaper inspect a block's run-owner pid without
    mapping it (no attach, no refcount churn).  Returns ``None`` when
    the file is unreadable or too short to carry a header; callers must
    additionally check :attr:`SegmentHeader.valid` before trusting the
    fields — any ``rs*``-named file could be a foreign or stale-format
    block.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read(_HEADER.size)
    except OSError:
        return None
    if len(raw) < _HEADER.size:
        return None
    try:
        fields = _HEADER.unpack_from(raw, 0)
    except struct.error:
        return None
    return SegmentHeader(*fields)


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is importable."""
    return _shared_memory is not None


class _suppress_tracking:
    """Keep a SharedMemory open/create out of the resource tracker.

    The registry owns reaping; left to its own devices the tracker would
    unlink (and warn about) every segment at interpreter shutdown —
    including blocks another process still has published.  Unregistering
    *after* the fact is not enough either: the tracker's cache is a set,
    so two processes attaching the same block collapse to one entry and
    the second UNREGISTER crashes the tracker loop with a KeyError.  The
    clean fix is to never talk to the tracker at all — this context
    manager no-ops ``resource_tracker.register`` *and* ``unregister``
    (``SharedMemory.unlink`` sends the latter) for the duration of the
    wrapped call (pre-3.13 Python has no ``track=False``).
    """

    def __enter__(self):
        try:
            from multiprocessing import resource_tracker

            self._module = resource_tracker
            self._register = resource_tracker.register
            self._unregister = resource_tracker.unregister
            resource_tracker.register = lambda name, rtype: None
            resource_tracker.unregister = lambda name, rtype: None
        except Exception:
            self._module = None
        return self

    def __exit__(self, *exc_info):
        if self._module is not None:
            self._module.register = self._register
            self._module.unregister = self._unregister
        return False


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ArraySpec:
    """Location of one packed array inside a segment's payload."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SegmentDescriptor:
    """Picklable handle to a published segment.

    This is what crosses the queue instead of the payload: a few hundred
    bytes naming the block, tabulating its arrays, and carrying a small
    metadata dict (e.g. the AIG's PI count).  ``meta`` values must be
    picklable scalars/containers; big data belongs in the arrays.
    """

    segment: str
    nbytes: int
    arrays: Tuple[ArraySpec, ...] = ()
    meta: Dict = field(default_factory=dict)


def build_layout(
    arrays: Dict[str, np.ndarray],
) -> Tuple[Tuple[ArraySpec, ...], int]:
    """Compute the packed payload layout for a dict of arrays.

    Returns the specs (offsets relative to the segment start) and the
    total segment size in bytes.  Arrays are packed C-contiguously at
    64-byte-aligned offsets, in insertion order.
    """
    specs = []
    offset = HEADER_BYTES
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        specs.append(
            ArraySpec(
                name=name,
                dtype=array.dtype.str,
                shape=tuple(int(d) for d in array.shape),
                offset=offset,
            )
        )
        offset = _align(offset + array.nbytes)
    return tuple(specs), offset


class Segment:
    """One shared-memory block plus its header bookkeeping."""

    def __init__(self, shm, name: str, owner: bool) -> None:
        self._shm = shm
        self.name = name
        self.owner = owner
        self.closed = False
        #: Pid of the run owner recorded in the header (0 when unknown).
        self.owner_pid = 0

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls, name: str, nbytes: int, owner_pid: int = 0
    ) -> "Segment":
        """Allocate a block and stamp a CREATED header (owner side).

        ``owner_pid`` records the pid of the *run owner* — the process
        whose registry is responsible for reaping this block (the
        portfolio parent or the serve daemon), not necessarily the
        worker that created it.  :func:`repro.shm.registry.reap_orphans`
        only collects blocks whose recorded owner is dead.
        """
        if _shared_memory is None:
            raise ShmUnavailableError(
                "multiprocessing.shared_memory is not available"
            )
        with _suppress_tracking():
            shm = _shared_memory.SharedMemory(
                name=name, create=True, size=max(nbytes, HEADER_BYTES)
            )
        segment = cls(shm, name, owner=True)
        segment.owner_pid = int(owner_pid)
        segment._write_header(STATE_CREATED, 0, nbytes)
        return segment

    @classmethod
    def attach(cls, name: str) -> "Segment":
        """Map an existing block (adopter side); validates the header."""
        if _shared_memory is None:
            raise ShmUnavailableError(
                "multiprocessing.shared_memory is not available"
            )
        with _suppress_tracking():
            shm = _shared_memory.SharedMemory(name=name, create=False)
        segment = cls(shm, name, owner=False)
        magic, version, state, _refs, _nbytes, owner_pid = (
            segment._read_header()
        )
        segment.owner_pid = owner_pid
        if magic != MAGIC or version != FORMAT_VERSION:
            segment.close()
            raise ValueError(f"segment {name!r} is not a data-plane block")
        if state != STATE_PUBLISHED:
            segment.close()
            raise ValueError(f"segment {name!r} was never published")
        return segment

    def publish(self) -> None:
        """Freeze the payload: mark PUBLISHED with the owner's ref."""
        self._write_header(STATE_PUBLISHED, 1, self.payload_nbytes)

    def close(self) -> None:
        """Drop this process's mapping (the block itself survives)."""
        if self.closed:
            return
        self.closed = True
        try:
            self._shm.close()
        except BufferError:
            # Live numpy views still pin the mapping; it will be freed
            # when they are garbage collected.  The name-level unlink is
            # independent, so nothing leaks in /dev/shm either way.
            self.closed = False
        except OSError:
            pass

    def unlink(self) -> None:
        """Remove the block's name; mappings stay valid until closed."""
        try:
            # SharedMemory.unlink() also sends an UNREGISTER to the
            # resource tracker; since create/attach never registered,
            # that message would crash the tracker loop with a KeyError.
            with _suppress_tracking():
                self._shm.unlink()
        except OSError:
            pass

    # -- payload access ------------------------------------------------

    @property
    def buf(self):
        return self._shm.buf

    @property
    def payload_nbytes(self) -> int:
        try:
            return self._read_header()[4]
        except (struct.error, TypeError, ValueError):
            return 0

    def write_arrays(
        self, arrays: Dict[str, np.ndarray], specs: Sequence[ArraySpec]
    ) -> None:
        """Copy the arrays into the payload at their packed offsets."""
        for spec in specs:
            source = np.ascontiguousarray(arrays[spec.name])
            if source.nbytes == 0:
                continue
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf,
                offset=spec.offset,
            )
            view[...] = source

    def view_arrays(
        self, specs: Sequence[ArraySpec]
    ) -> Dict[str, np.ndarray]:
        """Map the packed arrays as read-only views — zero copies."""
        views: Dict[str, np.ndarray] = {}
        for spec in specs:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf,
                offset=spec.offset,
            )
            view.flags.writeable = False
            views[spec.name] = view
        return views

    # -- header --------------------------------------------------------

    def _write_header(self, state: int, refcount: int, nbytes: int) -> None:
        _HEADER.pack_into(
            self._shm.buf,
            0,
            MAGIC,
            FORMAT_VERSION,
            state,
            refcount,
            nbytes,
            self.owner_pid,
        )

    def _read_header(self):
        return _HEADER.unpack_from(self._shm.buf, 0)

    @property
    def refcount(self) -> int:
        """Advisory adopter count (not atomic across processes)."""
        return self._read_header()[3]

    def incref(self) -> int:
        magic, version, state, refs, nbytes, owner_pid = self._read_header()
        refs += 1
        _HEADER.pack_into(
            self._shm.buf, 0, magic, version, state, refs, nbytes, owner_pid
        )
        return refs

    def decref(self) -> int:
        magic, version, state, refs, nbytes, owner_pid = self._read_header()
        refs = max(0, refs - 1)
        _HEADER.pack_into(
            self._shm.buf, 0, magic, version, state, refs, nbytes, owner_pid
        )
        return refs

    def __repr__(self) -> str:
        role = "owner" if self.owner else "adopter"
        return f"Segment({self.name!r}, {role})"
