"""Payload codecs for the data plane: AIGs and sweep state.

These helpers translate between the domain objects the engines speak
(:class:`~repro.aig.network.Aig`, :class:`~repro.sweep.state.SweepState`)
and the flat array dicts segments store.  Adoption constructs the
objects *over* the segment's read-only views — the AIG's fanin arrays,
the PI pattern pool, and the signature matrix are mapped, not copied.

Because adopted objects borrow segment memory, anything that outlives
the registry's reap must be detached first (:func:`detach_aig`,
:meth:`SweepState.detach`): detaching copies exactly the arrays that are
still views and leaves owned arrays alone.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.aig.network import Aig

from .registry import Adoption

__all__ = [
    "aig_shm_arrays",
    "aig_from_arrays",
    "adopt_aig",
    "detach_aig",
]


def aig_shm_arrays(aig: Aig) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Flatten an AIG into the segment array dict + metadata."""
    fanin0, fanin1 = aig.fanin_literals()
    arrays = {
        "fanin0": fanin0,
        "fanin1": fanin1,
        "pos": np.asarray(aig.pos, dtype=np.int64),
    }
    meta = {"kind": "aig", "num_pis": int(aig.num_pis), "name": aig.name}
    return arrays, meta


def aig_from_arrays(arrays: Dict[str, np.ndarray], meta: Dict) -> Aig:
    """Rebuild an AIG over segment views (int64 arrays pass zero-copy)."""
    return Aig(
        int(meta["num_pis"]),
        arrays["fanin0"],
        arrays["fanin1"],
        [int(po) for po in arrays["pos"]],
        name=str(meta.get("name", "aig")),
    )


def adopt_aig(adoption: Adoption) -> Aig:
    """Map an adopted ``kind == "aig"`` segment as an Aig."""
    return aig_from_arrays(adoption.arrays, adoption.meta)


def detach_aig(aig: Aig) -> Aig:
    """Return an AIG whose arrays own their memory.

    The identity is preserved when the network already owns its fanin
    arrays; otherwise a deep copy divorces it from the segment so the
    reaper can safely close the mapping.
    """
    fanin0, fanin1 = aig.fanin_literals()
    owns0 = fanin0.base is None or fanin0.flags.owndata
    owns1 = fanin1.base is None or fanin1.flags.owndata
    if owns0 and owns1:
        return aig
    return aig.copy()
