"""Zero-copy shared-memory data plane for the parallel portfolio.

The big arrays of a CEC run — AIG fanin tables, PI pattern pools,
signature matrices, SweepState carry-over — move between the portfolio
parent and its workers through POSIX shared-memory segments instead of
pickled ``multiprocessing`` queue payloads.  Queue messages shrink to
:class:`SegmentDescriptor` handles; the arrays themselves are written
once and mapped read-only by every adopter.

Layering:

- :mod:`repro.shm.segment` — one block: header, ownership protocol
  (create → publish → adopt → release), packed-array layout;
- :mod:`repro.shm.registry` — per-run naming, adoption bookkeeping, and
  the crash reaper that sweeps ``/dev/shm`` for segments of SIGKILLed
  workers;
- :mod:`repro.shm.plane` — codecs mapping AIGs and sweep state onto
  segment arrays (the SweepState side lives on the class itself:
  :meth:`repro.sweep.state.SweepState.attach` /
  :meth:`~repro.sweep.state.SweepState.detach`).
"""

from .plane import adopt_aig, aig_from_arrays, aig_shm_arrays, detach_aig
from .registry import (
    Adoption,
    SegmentRegistry,
    get_active_registry,
    reap_orphans,
    set_active_registry,
)
from .segment import (
    ArraySpec,
    Segment,
    SegmentDescriptor,
    SegmentHeader,
    ShmUnavailableError,
    build_layout,
    peek_header,
    shm_available,
)

__all__ = [
    "Adoption",
    "ArraySpec",
    "Segment",
    "SegmentDescriptor",
    "SegmentHeader",
    "SegmentRegistry",
    "ShmUnavailableError",
    "adopt_aig",
    "aig_from_arrays",
    "aig_shm_arrays",
    "build_layout",
    "detach_aig",
    "get_active_registry",
    "peek_header",
    "reap_orphans",
    "set_active_registry",
    "shm_available",
]
