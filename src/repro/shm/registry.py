"""Segment registry: naming, adoption bookkeeping, and crash reaping.

Every portfolio run owns one :class:`SegmentRegistry` in the parent; each
worker builds a satellite registry sharing the parent's *token* so that
all segments of a run — whichever process created them — carry names of
the form ``rs<token><suffix>n<seq>``.  That shared prefix is what makes
crash recovery possible: after the staged-termination hooks have stopped
every worker, the parent's :meth:`SegmentRegistry.reap` unlinks all
recorded segments *and* globs ``/dev/shm`` for the run prefix, catching
blocks a SIGKILLed worker published (or half-published) but never got to
announce.  Segments found only by the glob are counted as leaked
(``shm.segments_leaked``).

Names stay short (``rs`` + 8 hex chars + suffix) because macOS caps
POSIX shm names at 31 bytes.
"""

from __future__ import annotations

import glob
import os
import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.obs import get_tracer

from .segment import (
    Segment,
    SegmentDescriptor,
    build_layout,
    peek_header,
    shm_available,
)

__all__ = [
    "SegmentRegistry",
    "Adoption",
    "set_active_registry",
    "get_active_registry",
    "reap_orphans",
    "SHM_DIR",
    "NAME_PREFIX",
]

NAME_PREFIX = "rs"

#: Where Linux materialises POSIX shared memory as files.
SHM_DIR = "/dev/shm"

#: The single blob pseudo-array name used for pickled sidebands.
BLOB_KEY = "__blob__"


@dataclass
class Adoption:
    """A mapped view of someone else's published segment."""

    descriptor: SegmentDescriptor
    segment: Segment
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def blob(self) -> Optional[np.ndarray]:
        """The raw bytes array when the segment carries a pickled blob."""
        return self.arrays.get(BLOB_KEY)

    @property
    def meta(self) -> Dict:
        return self.descriptor.meta


class SegmentRegistry:
    """Tracks the segments one process created or adopted.

    Parent registries (no ``suffix``) are reapers: :meth:`reap` unlinks
    everything recorded plus anything the run-prefix glob turns up.
    Worker registries (``suffix="w<i>"``) only create and close — they
    never unlink, so a worker death at any point leaves blocks for the
    parent to collect.
    """

    def __init__(
        self,
        token: Optional[str] = None,
        suffix: str = "",
        metrics=None,
        owner_pid: Optional[int] = None,
    ) -> None:
        self.token = token if token is not None else secrets.token_hex(4)
        self.suffix = suffix
        #: Pid stamped into every created segment's header — the run
        #: owner responsible for reaping.  Parents default to their own
        #: pid; worker satellites must pass the parent's pid so another
        #: daemon's :func:`reap_orphans` never mistakes a live run's
        #: blocks for orphans just because the *worker* died.
        self.owner_pid = int(owner_pid) if owner_pid is not None else os.getpid()
        self._seq = 0
        self._owned: Dict[str, Segment] = {}
        self._adopted: Dict[str, Adoption] = {}
        self._known: set = set()
        self._metrics = metrics

    # -- helpers -------------------------------------------------------

    @property
    def metrics(self):
        if self._metrics is not None:
            return self._metrics
        return get_tracer().metrics

    def _next_name(self) -> str:
        name = f"{NAME_PREFIX}{self.token}{self.suffix}n{self._seq}"
        self._seq += 1
        return name

    @property
    def prefix(self) -> str:
        """The run-wide name prefix shared by every process's segments."""
        return f"{NAME_PREFIX}{self.token}"

    # -- ownership protocol --------------------------------------------

    def publish(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        blob: Optional[bytes] = None,
        meta: Optional[Dict] = None,
    ) -> SegmentDescriptor:
        """Create a segment, copy the payload in once, and publish it.

        ``arrays`` maps names to numpy arrays; ``blob`` packs raw bytes
        (e.g. a pickled sideband) as a single uint8 array.  Returns the
        descriptor to hand to adopters.
        """
        payload: Dict[str, np.ndarray] = dict(arrays or {})
        if blob is not None:
            payload[BLOB_KEY] = np.frombuffer(blob, dtype=np.uint8)
        specs, total = build_layout(payload)
        name = self._next_name()
        segment = Segment.create(name, total, owner_pid=self.owner_pid)
        try:
            segment.write_arrays(payload, specs)
            segment.publish()
        except BaseException:
            segment.unlink()
            segment.close()
            raise
        self._owned[name] = segment
        descriptor = SegmentDescriptor(
            segment=name,
            nbytes=total,
            arrays=specs,
            meta=dict(meta or {}),
        )
        metrics = self.metrics
        metrics.counter_add("shm.segments_created")
        metrics.counter_add("shm.bytes_shared", total)
        return descriptor

    def adopt(self, descriptor: SegmentDescriptor) -> Adoption:
        """Map a published segment's arrays without copying them."""
        self._known.add(descriptor.segment)
        cached = self._adopted.get(descriptor.segment)
        if cached is not None:
            return cached
        segment = Segment.attach(descriptor.segment)
        segment.incref()
        adoption = Adoption(
            descriptor=descriptor,
            segment=segment,
            arrays=segment.view_arrays(descriptor.arrays),
        )
        self._adopted[descriptor.segment] = adoption
        self.metrics.counter_add("shm.segments_adopted")
        return adoption

    def release(self, adoption: Adoption) -> None:
        """Drop an adoption's mapping (the reaper still unlinks later)."""
        stored = self._adopted.pop(adoption.descriptor.segment, None)
        if stored is None:
            return
        stored.arrays.clear()
        stored.segment.decref()
        stored.segment.close()
        self.metrics.counter_add("shm.segments_released")

    def unpublish(self, descriptor: SegmentDescriptor) -> None:
        """Unlink one owned segment before the run-level reap.

        Long-running owners (the serve daemon publishes one miter
        segment per job) cannot wait for :meth:`reap` — they would
        accumulate a segment per query until shutdown.  Unlinking keeps
        adopters' existing mappings valid; only the name disappears.
        """
        segment = self._owned.pop(descriptor.segment, None)
        if segment is None:
            self._known.discard(descriptor.segment)
            _unlink_by_name(descriptor.segment)
            return
        segment.unlink()
        segment.close()
        self.metrics.counter_add("shm.segments_unpublished")

    # -- teardown ------------------------------------------------------

    def close(self) -> None:
        """Worker-side teardown: unmap everything, unlink nothing."""
        for adoption in list(self._adopted.values()):
            self.release(adoption)
        for segment in self._owned.values():
            segment.close()
        self._owned.clear()

    def reap(self) -> int:
        """Parent-side teardown: unlink every segment of this run.

        Unlinks recorded segments (owned, adopted, or merely announced)
        and sweeps ``/dev/shm`` for the run prefix to catch blocks from
        crashed workers.  Returns the number of *leaked* segments — ones
        only the sweep found, meaning their creator died before the
        descriptor ever reached us.
        """
        for adoption in list(self._adopted.values()):
            self.release(adoption)
        seen = set(self._known)
        for name, segment in self._owned.items():
            seen.add(name)
            segment.unlink()
            segment.close()
        self._owned.clear()
        # Announced-but-never-adopted segments still need their unlink.
        for name in self._known:
            if name not in self._owned:
                _unlink_by_name(name)
        self._known.clear()

        leaked = 0
        for name in _scan_run_segments(self.prefix):
            if name in seen:
                continue
            _unlink_by_name(name)
            leaked += 1
        if leaked:
            self.metrics.counter_add("shm.segments_leaked", leaked)
        return leaked


def _unlink_by_name(name: str) -> None:
    """Unlink a segment by name without keeping a mapping around."""
    path = os.path.join(SHM_DIR, name)
    if os.path.isdir(SHM_DIR):
        try:
            os.unlink(path)
        except OSError:
            pass
        return
    try:  # non-Linux: attach/unlink through the module instead
        segment = Segment.attach(name)
    except Exception:
        return
    segment.unlink()
    segment.close()


def _scan_run_segments(prefix: str):
    """Names of live segments for a run prefix (Linux /dev/shm only)."""
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(
        os.path.basename(path)
        for path in glob.glob(os.path.join(SHM_DIR, prefix + "*"))
    )


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` names a live process on this machine."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The process exists but belongs to another user.
        return True
    except OSError:
        return False
    return True


def reap_orphans(max_age: float = 3600.0) -> int:
    """Unlink data-plane segments whose run owner is dead.

    A crash of the *parent* process (SIGKILL, power loss) strands the
    whole run's segments: nobody holds the registry any more.  Every
    block's header records its run-owner pid, so the sweep is precise:
    a segment is an orphan iff that pid is no longer alive.  Age never
    condemns a block with a live owner — two daemons sharing a machine
    cannot collect each other's long-lived warm-pool segments.  Blocks
    whose header is unreadable or from a foreign format fall back to the
    ``max_age`` mtime heuristic.  Returns the count reaped.
    """
    if not os.path.isdir(SHM_DIR):
        return 0
    now = time.time()
    reaped = 0
    for path in glob.glob(os.path.join(SHM_DIR, NAME_PREFIX + "*")):
        header = peek_header(path)
        try:
            if header is not None and header.valid:
                if _pid_alive(header.owner_pid):
                    continue
            elif now - os.stat(path).st_mtime < max_age:
                continue
            os.unlink(path)
            reaped += 1
        except OSError:
            continue
    return reaped


#: Process-wide active registry, so fault-injection checkers (and any
#: engine running inside a worker) can publish segments into the run.
_ACTIVE: Optional[SegmentRegistry] = None


def set_active_registry(registry: Optional[SegmentRegistry]) -> None:
    global _ACTIVE
    _ACTIVE = registry


def get_active_registry() -> Optional[SegmentRegistry]:
    return _ACTIVE
