"""DIMACS CNF import/export.

Lets CEC instances produced by this package be cross-checked with
external SAT solvers, and external CNF benchmarks be run through
:class:`~repro.sat.solver.SatSolver`.  DIMACS literals are 1-based and
sign-encoded; the in-memory representation stays the package's
``2*var + sign`` encoding.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple, Union

from repro.aig.literals import CONST0
from repro.aig.network import Aig
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver

PathLike = Union[str, "os.PathLike[str]"]


def to_dimacs_literal(literal: int) -> int:
    """Convert an internal literal to a DIMACS literal."""
    var = (literal >> 1) + 1
    return -var if literal & 1 else var


def from_dimacs_literal(literal: int) -> int:
    """Convert a DIMACS literal to the internal encoding."""
    if literal == 0:
        raise ValueError("0 is the DIMACS clause terminator, not a literal")
    var = abs(literal) - 1
    return (var << 1) | (1 if literal < 0 else 0)


def write_dimacs(
    num_vars: int,
    clauses: Sequence[Sequence[int]],
    path: PathLike,
    comments: Sequence[str] = (),
) -> None:
    """Write clauses (internal encoding) as a DIMACS CNF file."""
    lines = [f"c {c}" for c in comments]
    lines.append(f"p cnf {num_vars} {len(clauses)}")
    for clause in clauses:
        lines.append(
            " ".join(str(to_dimacs_literal(l)) for l in clause) + " 0"
        )
    with open(path, "w", encoding="ascii") as handle:
        handle.write("\n".join(lines) + "\n")


def read_dimacs(path: PathLike) -> Tuple[int, List[List[int]]]:
    """Read a DIMACS CNF file; returns (num_vars, clauses) internally encoded."""
    num_vars = None
    clauses: List[List[int]] = []
    current: List[int] = []
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {line!r}")
                num_vars = int(parts[2])
                continue
            for token in line.split():
                value = int(token)
                if value == 0:
                    clauses.append(current)
                    current = []
                else:
                    current.append(from_dimacs_literal(value))
    if num_vars is None:
        raise ValueError("missing DIMACS problem line")
    if current:
        clauses.append(current)  # tolerate a missing final terminator
    return num_vars, clauses


def miter_to_dimacs(miter: Aig, path: PathLike) -> int:
    """Export a miter as a CNF satisfiability instance.

    The formula is satisfiable iff the miter output can be 1, i.e. iff
    the two circuits the miter compares are NOT equivalent.  The first
    ``num_pis`` DIMACS variables are the miter PIs in order, so a model
    is directly a counter-example pattern.  Returns the variable count.
    """
    solver = _RecordingSolver()
    cnf = CnfBuilder(miter, solver)
    # Pin PI variable numbering: PIs first, in order.
    for pi in miter.pis():
        cnf.var_of(pi)
    outputs = []
    for po in miter.pos:
        if po == CONST0:
            continue
        outputs.append(cnf.literal(po))
    if outputs:
        solver.add_clause(outputs)  # some miter PO is 1
    else:
        # All POs constant zero: the instance is UNSAT by construction.
        fresh = solver.new_var()
        solver.add_clause([fresh << 1])
        solver.add_clause([(fresh << 1) | 1])
    write_dimacs(
        solver.num_vars,
        solver.recorded,
        path,
        comments=[
            f"miter {miter.name}: SAT model = counter-example",
            f"first {miter.num_pis} variables are the primary inputs",
        ],
    )
    return solver.num_vars


class _RecordingSolver(SatSolver):
    """A solver that records clauses verbatim for export.

    The base class simplifies clauses against level-0 facts, which is
    wrong for export (we want the full formula).  Only ``add_clause`` is
    intercepted; nothing is ever solved.
    """

    def __init__(self) -> None:
        super().__init__()
        self.recorded: List[List[int]] = []

    def add_clause(self, lits) -> bool:  # type: ignore[override]
        clause = list(lits)
        self.recorded.append(clause)
        return True
