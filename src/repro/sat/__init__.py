"""SAT substrate: CDCL solver, AIG-to-CNF encoding, SAT sweeping.

This subpackage is the from-scratch substitute for ABC's ``&cec``
(DESIGN.md §2): :mod:`repro.sat.solver` implements a CDCL solver with
watched literals, first-UIP learning, VSIDS branching, phase saving and
Luby restarts; :mod:`repro.sat.cnf` encodes AIG cones via Tseitin
transformation; :mod:`repro.sat.sweeping` combines them into a FRAIG-style
SAT sweeping equivalence checker.
"""

from repro.sat.solver import SatSolver, SolveStatus
from repro.sat.cnf import CnfBuilder
from repro.sat.sweeping import SatSweepChecker

__all__ = ["CnfBuilder", "SatSolver", "SatSweepChecker", "SolveStatus"]
