"""FRAIG-style SAT sweeping equivalence checker (ABC ``&cec`` substitute).

The classic SAT sweeping loop ([8], [16] in the paper): random simulation
initialises equivalence classes, candidate pairs are checked by a CDCL
solver with a conflict limit, SAT answers yield counter-examples that
split the classes, UNSAT answers merge the pair.  When classes dry up the
remaining miter POs are proved (or refuted) by final SAT calls.

Differences from the paper's engine are the point of the comparison: the
prover here is SAT, not exhaustive simulation, and there is no cut-based
local checking — a pair either succumbs to SAT within the conflict limit
or stays unresolved.

Proved pairs are additionally asserted as equivalences inside the live
solver (``a ↔ b`` clauses), so later queries in the same round benefit
from earlier merges — the incremental behaviour that makes SAT sweeping
strong in practice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.aig.literals import CONST0, lit
from repro.aig.miter import build_miter, miter_is_trivially_unsat
from repro.aig.network import Aig
from repro.aig.transform import cleanup
from repro.cache.knowledge import SweepCache
from repro.obs import get_tracer
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver, SolveStatus
from repro.sweep.classes import SimulationState
from repro.sweep.engine import CecResult, CecStatus
from repro.sweep.report import EngineReport, PhaseRecord, PhaseTimer
from repro.sweep.state import SweepState


@dataclass
class SatSweepStats:
    """Solver-level counters of one checking run."""

    rounds: int = 0
    sat_calls: int = 0
    proved_pairs: int = 0
    disproved_pairs: int = 0
    unknown_pairs: int = 0
    po_calls: int = 0


class SatSweepChecker:
    """SAT sweeping CEC baseline.

    Parameters
    ----------
    conflict_limit:
        Per-query conflict budget (the ``-C`` option of ABC ``&cec``; the
        paper uses 100000 when proving residual miters).
    num_random_words:
        Random words for class initialisation (64 patterns per word).
    seed:
        RNG seed for the random patterns.
    time_limit:
        Optional wall-clock budget in seconds; exceeded → UNDECIDED, the
        partially reduced miter is returned.  Models the timeouts of the
        paper's Table II (ABC hit a 122-day timeout on log2_10xd).
    max_rounds:
        Sweep/refine iterations before giving up on internal pairs.
    """

    def __init__(
        self,
        conflict_limit: int = 100_000,
        num_random_words: int = 32,
        seed: int = 2025,
        time_limit: Optional[float] = None,
        max_rounds: int = 16,
        pattern_strategy: str = "random",
        cache: Optional[SweepCache] = None,
    ) -> None:
        self.conflict_limit = conflict_limit
        self.num_random_words = num_random_words
        self.seed = seed
        self.time_limit = time_limit
        self.max_rounds = max_rounds
        self.pattern_strategy = pattern_strategy
        self.cache = cache
        self.stats = SatSweepStats()

    # ------------------------------------------------------------------

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(
        self,
        miter: Aig,
        state: Optional[Union[SimulationState, SweepState]] = None,
    ) -> CecResult:
        """Run SAT sweeping on a miter.

        ``state`` optionally transfers knowledge from a previous engine
        (the EC-transfer extension of §V).  A plain
        :class:`~repro.sweep.classes.SimulationState` contributes its
        pattern pool — counter-examples pre-split the classes, so pairs
        already disproved elsewhere are never re-checked by SAT.  A
        :class:`~repro.sweep.state.SweepState` whose network matches the
        handed-over miter is adopted outright: its carried signature
        matrix, classes and cache fingerprints are consumed in place and
        the initial cleanup/re-simulation is skipped entirely.
        """
        start = time.perf_counter()
        self.stats = SatSweepStats()
        report = EngineReport(initial_ands=miter.num_ands)
        record = PhaseRecord("SAT")
        sweep = self._adopt_state(miter, state)
        cache_snapshot = (
            self.cache.snapshot() if self.cache is not None else None
        )
        tracer = get_tracer()

        def finish(result: CecResult) -> CecResult:
            record.miter_ands_after = (
                result.reduced_miter.num_ands if result.reduced_miter else 0
            )
            report.final_ands = record.miter_ands_after
            report.phases.append(record)
            report.total_seconds = time.perf_counter() - start
            if self.cache is not None:
                self.cache.flush()
                report.cache = self.cache.counters.diff(cache_snapshot)
            if tracer.enabled:
                report.metrics = tracer.metrics.as_dict()
            result.report = report
            return result

        deadline = (
            start + self.time_limit if self.time_limit is not None else None
        )
        with tracer.span(
            "sat.check_miter",
            category="sat",
            initial_ands=sweep.network().num_ands,
        ), PhaseTimer(record):
            result = self._sweep(sweep, record, deadline)
        return finish(result)

    # ------------------------------------------------------------------

    def _adopt_state(
        self,
        miter: Aig,
        state: Optional[Union[SimulationState, SweepState]],
    ) -> SweepState:
        """Build the working :class:`SweepState` for this run.

        A matching ``SweepState`` is reused verbatim (no cleanup — its
        network is already compact, and cleaning would orphan the
        carried knowledge).  Otherwise a fresh state is built from the
        cleaned miter and any transferred pattern pool is adopted.

        Verbatim adoption is the zero-re-simulation hand-off the
        shared-memory data plane enables (the finisher maps another
        process's carried state); it is counted as ``sat.state_adopted``
        with the carried signature words under
        ``sat.adopted_carried_words``.
        """
        if isinstance(state, SweepState) and state.matches(miter):
            metrics = get_tracer().metrics
            metrics.counter_add("sat.state_adopted")
            metrics.counter_add(
                "sat.adopted_carried_words", state.carried_words
            )
            return state
        sweep = SweepState(
            cleanup(miter),
            num_random_words=self.num_random_words,
            seed=self.seed,
            strategy=self.pattern_strategy,
        )
        if state is not None and state.num_pis == sweep.num_pis:
            pool = state.pool() if isinstance(state, SweepState) else state
            sweep.adopt_pool(pool)
        return sweep

    def _sweep(
        self,
        sweep: SweepState,
        record: PhaseRecord,
        deadline: Optional[float],
    ) -> CecResult:
        miter = sweep.network()
        if miter_is_trivially_unsat(miter):
            return CecResult(CecStatus.EQUIVALENT)
        if any(po == 1 for po in miter.pos):
            return CecResult(CecStatus.NONEQUIVALENT, cex=[0] * miter.num_pis)

        for _ in range(self.max_rounds):
            miter = sweep.network()
            if _expired(deadline):
                return CecResult(
                    CecStatus.UNDECIDED, reduced_miter=miter, sim_state=sweep
                )
            tables = sweep.tables()
            disproof = _po_disproof(miter, sweep, tables)
            if disproof is not None:
                return disproof
            classes = sweep.classes(tables=tables)
            pairs = [
                (r, n, phase)
                for r, n, phase in classes.all_pairs()
                if miter.is_and(n) or miter.is_pi(n)
            ]
            if not pairs:
                break
            record.candidates += len(pairs)
            bound = sweep.bound_cache(self.cache)
            tracer = get_tracer()
            solver = SatSolver()
            cnf = CnfBuilder(miter, solver)
            merges: Dict[int, Tuple[int, int]] = {}
            cex_patterns: List[List[int]] = []
            timed_out = False
            for repr_node, node, phase in pairs:
                if _expired(deadline):
                    timed_out = True
                    break
                lit_r = lit(repr_node)
                lit_n = lit(node, phase)
                if bound is not None:
                    known = bound.lookup_pair(
                        lit_r, lit_n, want_inconclusive=True
                    )
                    if known is not None:
                        if known.is_equivalent:
                            merges[node] = (repr_node, phase)
                            self.stats.proved_pairs += 1
                            record.proved += 1
                            # Assert the cached equivalence so later SAT
                            # queries in this round benefit from it just
                            # like from a freshly proved one.
                            sol_r = cnf.literal(lit_r)
                            sol_n = cnf.literal(lit_n)
                            solver.add_clause([sol_r, sol_n ^ 1])
                            solver.add_clause([sol_r ^ 1, sol_n])
                            continue
                        if known.is_nonequivalent:
                            cex_patterns.append(known.cex)
                            self.stats.disproved_pairs += 1
                            record.cex += 1
                            continue
                        if known.conflict_limit >= self.conflict_limit:
                            # A budget at least as large already failed
                            # on this pair: re-solving cannot do better.
                            self.stats.unknown_pairs += 1
                            continue
                pair_start = time.perf_counter()
                with tracer.span("sat.pair", category="sat") as pair_span:
                    status = self._check_pair(
                        solver, cnf, lit_r, lit_n, deadline
                    )
                    pair_span.set("status", status.name)
                pair_seconds = time.perf_counter() - pair_start
                self.stats.sat_calls += 1
                tracer.metrics.counter_add("sat.pair_calls")
                tracer.metrics.observe("sat.pair_seconds", pair_seconds)
                if status is SolveStatus.UNSAT:
                    merges[node] = (repr_node, phase)
                    self.stats.proved_pairs += 1
                    record.proved += 1
                    if bound is not None:
                        bound.record_equivalent(
                            lit_r, lit_n, engine="sat", context="SAT",
                            seconds=pair_seconds,
                        )
                elif status is SolveStatus.SAT:
                    pattern = cnf.pi_pattern_from_model()
                    cex_patterns.append(pattern)
                    self.stats.disproved_pairs += 1
                    record.cex += 1
                    if bound is not None:
                        bound.record_nonequivalent(
                            lit_r, lit_n, pattern, engine="sat",
                            context="SAT", seconds=pair_seconds,
                        )
                else:
                    self.stats.unknown_pairs += 1
                    # Only a genuine conflict-budget defeat is worth
                    # memoising; a deadline abort says nothing about
                    # what the full budget could have proved.
                    if bound is not None and not _expired(deadline):
                        bound.record_inconclusive(
                            lit_r, lit_n, engine="sat", context="SAT",
                            conflict_limit=self.conflict_limit,
                            seconds=pair_seconds,
                        )
            self.stats.rounds += 1
            if cex_patterns:
                sweep.add_cex_patterns(cex_patterns)
            if merges:
                sweep.apply_merges(merges)
            if miter_is_trivially_unsat(sweep.network()):
                return CecResult(CecStatus.EQUIVALENT)
            if timed_out:
                return CecResult(
                    CecStatus.UNDECIDED,
                    reduced_miter=sweep.network(),
                    sim_state=sweep,
                )
            if not merges and not cex_patterns:
                break

        return self._prove_outputs(sweep, deadline, record)

    def _check_pair(
        self,
        solver: SatSolver,
        cnf: CnfBuilder,
        lit_a: int,
        lit_b: int,
        deadline: Optional[float] = None,
    ) -> SolveStatus:
        """One equivalence query: SAT ⇔ the pair differs on some pattern."""
        sel, sol_a, sol_b = cnf.open_pair_query(lit_a, lit_b)
        status = solver.solve(
            assumptions=[sel],
            conflict_limit=self.conflict_limit,
            deadline=deadline,
        )
        cnf.retire_query(sel)
        if status is SolveStatus.UNSAT:
            # Assert the proved equivalence so later queries benefit.
            cnf.assert_equal(sol_a, sol_b)
        return status

    def _prove_outputs(
        self,
        sweep: SweepState,
        deadline: Optional[float],
        record: PhaseRecord,
    ) -> CecResult:
        miter = sweep.network()
        bound = sweep.bound_cache(self.cache)
        tracer = get_tracer()
        solver = SatSolver()
        cnf = CnfBuilder(miter, solver)
        new_pos = list(miter.pos)
        any_unknown = False
        for i, po in enumerate(miter.pos):
            if po == CONST0:
                continue
            if _expired(deadline):
                any_unknown = True
                break
            record.candidates += 1
            if bound is not None:
                known = bound.lookup_pair(po, CONST0, want_inconclusive=True)
                if known is not None:
                    if known.is_equivalent:
                        new_pos[i] = CONST0
                        record.proved += 1
                        continue
                    if known.is_nonequivalent:
                        return CecResult(
                            CecStatus.NONEQUIVALENT, cex=known.cex
                        )
                    if known.conflict_limit >= self.conflict_limit:
                        any_unknown = True
                        continue
            po_start = time.perf_counter()
            with tracer.span("sat.po", category="sat", po_index=i):
                sol_po = cnf.literal(po)
                selector = solver.new_var()
                sel = selector << 1
                solver.add_clause([sel ^ 1, sol_po])
                status = solver.solve(
                    assumptions=[sel],
                    conflict_limit=self.conflict_limit,
                    deadline=deadline,
                )
                solver.add_clause([sel ^ 1])
            po_seconds = time.perf_counter() - po_start
            self.stats.po_calls += 1
            tracer.metrics.observe("sat.po_seconds", po_seconds)
            if status is SolveStatus.SAT:
                pattern = cnf.pi_pattern_from_model()
                if bound is not None:
                    bound.record_nonequivalent(
                        po, CONST0, pattern, engine="sat", context="PO",
                        seconds=po_seconds,
                    )
                return CecResult(CecStatus.NONEQUIVALENT, cex=pattern)
            if status is SolveStatus.UNSAT:
                new_pos[i] = CONST0
                solver.add_clause([sol_po ^ 1])
                record.proved += 1
                if bound is not None:
                    bound.record_equivalent(
                        po, CONST0, engine="sat", context="PO",
                        seconds=po_seconds,
                    )
            else:
                any_unknown = True
                if bound is not None and not _expired(deadline):
                    bound.record_inconclusive(
                        po, CONST0, engine="sat", context="PO",
                        conflict_limit=self.conflict_limit,
                        seconds=po_seconds,
                    )
        reduced = sweep.set_pos(new_pos)
        if not any_unknown and miter_is_trivially_unsat(reduced):
            return CecResult(CecStatus.EQUIVALENT)
        return CecResult(
            CecStatus.UNDECIDED, reduced_miter=reduced, sim_state=sweep
        )


def _expired(deadline: Optional[float]) -> bool:
    return deadline is not None and time.perf_counter() > deadline


def _po_disproof(
    miter: Aig, state: SimulationState, tables
) -> Optional[CecResult]:
    """Random-pattern disproof of the miter (shared with the sim engine)."""
    from repro.sweep.disproof import find_po_disproof

    pattern = find_po_disproof(miter, state.pi_words, tables)
    if pattern is None:
        return None
    return CecResult(CecStatus.NONEQUIVALENT, cex=pattern)
