"""Lazy Tseitin encoding of AIG cones into a SAT solver.

Each AND node gets the standard three clauses; nodes are encoded on
demand when a query first touches their cone, so checking a small pair
deep inside a large miter never pays for the whole network.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.aig.network import Aig
from repro.sat.solver import SatSolver


class CnfBuilder:
    """Incremental AIG → CNF encoder bound to one solver instance."""

    def __init__(self, aig: Aig, solver: SatSolver) -> None:
        self.aig = aig
        self.solver = solver
        self._var_of: Dict[int, int] = {}

    def var_of(self, node: int) -> int:
        """Solver variable of an AIG node, encoding its cone if needed."""
        var = self._var_of.get(node)
        if var is None:
            self._encode_cone(node)
            var = self._var_of[node]
        return var

    def literal(self, aig_literal: int) -> int:
        """Solver literal corresponding to an AIG literal."""
        return (self.var_of(aig_literal >> 1) << 1) | (aig_literal & 1)

    def pi_pattern_from_model(self) -> List[int]:
        """Extract a full PI assignment from the solver's last model.

        PIs never touched by any encoded cone default to 0.
        """
        pattern = []
        for pi in self.aig.pis():
            var = self._var_of.get(pi)
            pattern.append(self.solver.model_value(var) if var is not None else 0)
        return pattern

    @property
    def encoded_nodes(self) -> int:
        """Nodes encoded so far — the incremental cone-size signal."""
        return len(self._var_of)

    # ------------------------------------------------------------------
    # Assumption-guarded pair queries (the batched incremental protocol)
    # ------------------------------------------------------------------

    def open_pair_query(self, lit_a: int, lit_b: int) -> Tuple[int, int, int]:
        """Open an inequivalence query for a pair of AIG literals.

        Returns ``(sel, sol_a, sol_b)``: solving under assumption ``sel``
        searches for a pattern on which the two literals differ.  Many
        queries can share one solver — each gets its own selector, so
        retired queries never constrain later ones.
        """
        sol_a = self.literal(lit_a)
        sol_b = self.literal(lit_b)
        sel = self.solver.new_var() << 1
        self.solver.add_clause([sel ^ 1, sol_a, sol_b])
        self.solver.add_clause([sel ^ 1, sol_a ^ 1, sol_b ^ 1])
        return sel, sol_a, sol_b

    def retire_query(self, sel: int) -> None:
        """Permanently disable an open selector (its query is settled)."""
        self.solver.add_clause([sel ^ 1])

    def assert_equal(self, sol_a: int, sol_b: int) -> None:
        """Assert a proved equivalence so later queries benefit from it."""
        self.solver.add_clause([sol_a, sol_b ^ 1])
        self.solver.add_clause([sol_a ^ 1, sol_b])

    # ------------------------------------------------------------------

    def _encode_cone(self, node: int) -> None:
        stack = [node]
        while stack:
            current = stack[-1]
            if current in self._var_of:
                stack.pop()
                continue
            if self.aig.is_const(current):
                var = self.solver.new_var()
                self.solver.add_clause([(var << 1) | 1])  # constant false
                self._var_of[current] = var
                stack.pop()
                continue
            if self.aig.is_pi(current):
                self._var_of[current] = self.solver.new_var()
                stack.pop()
                continue
            f0, f1 = self.aig.fanins(current)
            pending = [
                v for v in (f0 >> 1, f1 >> 1) if v not in self._var_of
            ]
            if pending:
                stack.extend(pending)
                continue
            var = self.solver.new_var()
            self._var_of[current] = var
            lit0 = (self._var_of[f0 >> 1] << 1) | (f0 & 1)
            lit1 = (self._var_of[f1 >> 1] << 1) | (f1 & 1)
            self.solver.add_aig_and(var << 1, lit0, lit1)
            stack.pop()
