"""Lazy Tseitin encoding of AIG cones into a SAT solver.

Each AND node gets the standard three clauses; nodes are encoded on
demand when a query first touches their cone, so checking a small pair
deep inside a large miter never pays for the whole network.
"""

from __future__ import annotations

from typing import Dict, List

from repro.aig.network import Aig
from repro.sat.solver import SatSolver


class CnfBuilder:
    """Incremental AIG → CNF encoder bound to one solver instance."""

    def __init__(self, aig: Aig, solver: SatSolver) -> None:
        self.aig = aig
        self.solver = solver
        self._var_of: Dict[int, int] = {}

    def var_of(self, node: int) -> int:
        """Solver variable of an AIG node, encoding its cone if needed."""
        var = self._var_of.get(node)
        if var is None:
            self._encode_cone(node)
            var = self._var_of[node]
        return var

    def literal(self, aig_literal: int) -> int:
        """Solver literal corresponding to an AIG literal."""
        return (self.var_of(aig_literal >> 1) << 1) | (aig_literal & 1)

    def pi_pattern_from_model(self) -> List[int]:
        """Extract a full PI assignment from the solver's last model.

        PIs never touched by any encoded cone default to 0.
        """
        pattern = []
        for pi in self.aig.pis():
            var = self._var_of.get(pi)
            pattern.append(self.solver.model_value(var) if var is not None else 0)
        return pattern

    # ------------------------------------------------------------------

    def _encode_cone(self, node: int) -> None:
        stack = [node]
        while stack:
            current = stack[-1]
            if current in self._var_of:
                stack.pop()
                continue
            if self.aig.is_const(current):
                var = self.solver.new_var()
                self.solver.add_clause([(var << 1) | 1])  # constant false
                self._var_of[current] = var
                stack.pop()
                continue
            if self.aig.is_pi(current):
                self._var_of[current] = self.solver.new_var()
                stack.pop()
                continue
            f0, f1 = self.aig.fanins(current)
            pending = [
                v for v in (f0 >> 1, f1 >> 1) if v not in self._var_of
            ]
            if pending:
                stack.extend(pending)
                continue
            var = self.solver.new_var()
            self._var_of[current] = var
            lit0 = (self._var_of[f0 >> 1] << 1) | (f0 & 1)
            lit1 = (self._var_of[f1 >> 1] << 1) | (f1 & 1)
            self.solver.add_aig_and(var << 1, lit0, lit1)
            stack.pop()
