"""A CDCL SAT solver.

Implements the standard modern architecture (MiniSat lineage, [10] in the
paper): two-watched-literal propagation, first-UIP conflict analysis with
non-chronological backjumping, exponential VSIDS activities, phase
saving, Luby restarts and activity-based learnt-clause reduction.
Supports incremental use through assumptions and monotone clause
addition, which is how the SAT sweeper retires per-pair queries.

Literals use the same encoding as the AIG: ``lit = 2 * var + sign`` with
``sign = 1`` for negation.  Variables are created with :meth:`new_var`
and numbered from 0.
"""

from __future__ import annotations

import enum
import heapq
import time
from typing import Dict, Iterable, List, Optional, Sequence


class SolveStatus(enum.Enum):
    """Result of a :meth:`SatSolver.solve` call."""

    SAT = "sat"
    UNSAT = "unsat"
    #: Conflict or propagation budget exhausted before a verdict.
    UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,… (1-indexed)."""
    while True:
        k = i.bit_length()
        if i + 1 == (1 << k):
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class _Clause:
    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: List[int], learnt: bool) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class SatSolver:
    """Conflict-driven clause-learning solver.

    Example
    -------
    >>> s = SatSolver()
    >>> a, b = s.new_var(), s.new_var()
    >>> _ = s.add_clause([2 * a, 2 * b])          # a | b
    >>> _ = s.add_clause([2 * a + 1, 2 * b + 1])  # !a | !b
    >>> s.solve().value
    'sat'
    >>> s.solve(assumptions=[2 * a, 2 * b]).value
    'unsat'
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._watches: List[List[_Clause]] = []
        self._values: List[int] = []  # -1 unassigned, 0 false, 1 true (per var)
        self._levels: List[int] = []
        self._reasons: List[Optional[_Clause]] = []
        self._trail: List[int] = []  # assigned literals in order
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._saved_phase: List[int] = []
        # Lazy max-heap of (-activity, var); stale entries are skipped.
        self._order_heap: List[tuple] = []
        self._ok = True
        self._model: List[int] = []
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Create a fresh variable; returns its index."""
        var = self.num_vars
        self.num_vars += 1
        self._watches.append([])
        self._watches.append([])
        self._values.append(-1)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._saved_phase.append(0)
        heapq.heappush(self._order_heap, (0.0, var))
        return var

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if it makes the formula trivially UNSAT.

        Must be called at decision level 0 (e.g. between solve calls; the
        solver backtracks to level 0 after every solve).
        """
        assert not self._trail_lim, "clauses must be added at level 0"
        seen: Dict[int, int] = {}
        simplified: List[int] = []
        for literal in lits:
            var = literal >> 1
            if var >= self.num_vars:
                raise ValueError(f"unknown variable {var}")
            value = self._lit_value(literal)
            if value == 1:
                return True  # satisfied at level 0
            if value == 0:
                continue  # falsified at level 0, drop
            prev = seen.get(var)
            if prev is None:
                seen[var] = literal
                simplified.append(literal)
            elif prev != literal:
                return True  # tautology x | !x
        if not simplified:
            self._ok = False
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(simplified, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    def add_aig_and(self, out: int, in0: int, in1: int) -> None:
        """Convenience: Tseitin clauses of ``out = in0 AND in1``.

        Arguments are solver literals (phases allowed on the inputs).
        """
        self.add_clause([out ^ 1, in0])
        self.add_clause([out ^ 1, in1])
        self.add_clause([out, in0 ^ 1, in1 ^ 1])

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        propagation_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> SolveStatus:
        """Solve under assumptions with optional budgets.

        ``deadline`` is an absolute ``time.perf_counter()`` timestamp;
        it is checked on every conflict, so a single hard query cannot
        overshoot a caller's wall-clock budget by more than the time
        between two conflicts.  Returns :attr:`SolveStatus.UNKNOWN` when
        any budget runs out; the solver stays usable (all state is
        backtracked to level 0).
        """
        if not self._ok:
            return SolveStatus.UNSAT
        self._backtrack(0)
        conflict_budget = conflict_limit
        start_propagations = self.propagations
        restart_index = 1
        restart_budget = 64 * _luby(restart_index)
        conflicts_here = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if deadline is not None and time.perf_counter() > deadline:
                    self._backtrack(0)
                    return SolveStatus.UNKNOWN
                if conflict_budget is not None:
                    conflict_budget -= 1
                    if conflict_budget < 0:
                        self._backtrack(0)
                        return SolveStatus.UNKNOWN
                if self._decision_level() == 0:
                    self._ok = False
                    return SolveStatus.UNSAT
                learnt, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                self._record_learnt(learnt)
                self._decay_activities()
                if conflicts_here >= restart_budget:
                    conflicts_here = 0
                    restart_index += 1
                    restart_budget = 64 * _luby(restart_index)
                    self._backtrack(0)
                if len(self._learnts) > 4000 + 8 * len(self._clauses):
                    self._reduce_learnts()
                continue
            if (
                propagation_limit is not None
                and self.propagations - start_propagations > propagation_limit
            ):
                self._backtrack(0)
                return SolveStatus.UNKNOWN
            # Extend assumptions first, then decide.
            literal = self._next_assumption(assumptions)
            if literal == -1:
                self._backtrack(0)
                return SolveStatus.UNSAT  # assumption conflicts with level 0
            if literal is None:
                literal = self._decide()
                if literal is None:
                    # Snapshot the model, then restore level 0 so the
                    # solver stays incremental (clauses can be added).
                    self._model = [max(v, 0) for v in self._values]
                    self._backtrack(0)
                    return SolveStatus.SAT
            self._trail_lim.append(len(self._trail))
            self._enqueue(literal, None)

    def model_value(self, var: int) -> int:
        """Value of a variable in the last SAT model (0 when unassigned)."""
        if var < len(self._model):
            return self._model[var]
        return 0

    def model(self) -> List[int]:
        """The full model of the last SAT call (0/1 per variable)."""
        return [self.model_value(v) for v in range(self.num_vars)]

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _lit_value(self, literal: int) -> int:
        value = self._values[literal >> 1]
        if value < 0:
            return -1
        return value ^ (literal & 1)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: int, reason: Optional[_Clause]) -> bool:
        value = self._lit_value(literal)
        if value == 0:
            return False
        if value == 1:
            return True
        var = literal >> 1
        self._values[var] = 1 ^ (literal & 1)
        self._levels[var] = self._decision_level()
        self._reasons[var] = reason
        self._trail.append(literal)
        return True

    def _propagate(self) -> Optional[_Clause]:
        while self._qhead < len(self._trail):
            literal = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            falsified = literal ^ 1
            watchers = self._watches[falsified]
            self._watches[falsified] = []
            for idx, clause in enumerate(watchers):
                lits = clause.lits
                # Ensure the falsified literal is at position 1.
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                if self._lit_value(lits[0]) == 1:
                    self._watches[falsified].append(clause)
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Unit or conflicting.
                self._watches[falsified].append(clause)
                if not self._enqueue(lits[0], clause):
                    # Conflict: restore remaining watchers and report.
                    self._watches[falsified].extend(watchers[idx + 1 :])
                    self._qhead = len(self._trail)
                    return clause
        return None

    def _analyze(self, conflict: _Clause) -> tuple:
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        literal = -1
        clause: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        level = self._decision_level()
        while True:
            assert clause is not None
            self._bump_clause(clause)
            for other in clause.lits:
                if other == literal:
                    continue
                var = other >> 1
                if seen[var] or self._levels[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._levels[var] >= level:
                    counter += 1
                else:
                    learnt.append(other)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            literal = self._trail[index]
            var = literal >> 1
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            clause = self._reasons[var]
        learnt[0] = literal ^ 1
        if len(learnt) == 1:
            return learnt, 0
        # Find backjump level = max level among non-asserting literals.
        max_i = 1
        for i in range(2, len(learnt)):
            if self._levels[learnt[i] >> 1] > self._levels[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._levels[learnt[1] >> 1]

    def _record_learnt(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learnt=True)
        clause.activity = self._cla_inc
        self._learnts.append(clause)
        self._attach(clause)
        self._enqueue(learnt[0], clause)

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.lits[0]].append(clause)
        self._watches[clause.lits[1]].append(clause)

    def _detach(self, clause: _Clause) -> None:
        for w in (clause.lits[0], clause.lits[1]):
            try:
                self._watches[w].remove(clause)
            except ValueError:
                pass

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for literal in reversed(self._trail[boundary:]):
            var = literal >> 1
            self._saved_phase[var] = self._values[var]
            self._values[var] = -1
            self._reasons[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _next_assumption(self, assumptions: Sequence[int]):
        """Next unassigned assumption literal, None if exhausted, -1 on conflict.

        Assumptions are (re-)enqueued in order before any ordinary
        decision, so a falsified assumption was implied by level-0 facts
        and *earlier* assumptions — the query is UNSAT under the
        assumptions (MiniSat's analyzeFinal situation).
        """
        for literal in assumptions:
            value = self._lit_value(literal)
            if value == 1:
                continue
            if value == -1:
                return literal
            return -1
        return None

    def _decide(self) -> Optional[int]:
        while self._order_heap:
            _, var = heapq.heappop(self._order_heap)
            if self._values[var] < 0:
                self.decisions += 1
                phase = self._saved_phase[var]
                return (var << 1) | (1 if phase <= 0 else 0)
        for var in range(self.num_vars):
            if self._values[var] < 0:
                self.decisions += 1
                phase = self._saved_phase[var]
                return (var << 1) | (1 if phase <= 0 else 0)
        return None

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._values[var] < 0:
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        if self._activity[var] > 1e100:
            for v in range(self.num_vars):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learnt:
            return
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    def _reduce_learnts(self) -> None:
        locked = set()
        for var in range(self.num_vars):
            reason = self._reasons[var]
            if reason is not None and reason.learnt:
                locked.add(id(reason))
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        removed = []
        kept = []
        for i, clause in enumerate(self._learnts):
            if i >= keep_from or id(clause) in locked or len(clause.lits) <= 2:
                kept.append(clause)
            else:
                removed.append(clause)
        for clause in removed:
            self._detach(clause)
        self._learnts = kept
