"""Counters and histograms backing the tracing layer.

A :class:`MetricsRegistry` holds named monotonic **counters** (sim words
computed, gather/scatter bytes moved, cut expansions, cache stores …)
and **histograms** (per-pair SAT seconds, cache lookup latencies, span
durations).  Histograms are log₂-bucketed: observation ``v`` lands in
the bucket labelled by its binary exponent (``v ≤ 2^e``), which keeps
them mergeable across processes with a fixed, tiny footprint — the same
trick Prometheus-style exporters use.

Everything is plain-dict serialisable (:meth:`MetricsRegistry.as_dict` /
:meth:`merge_dict`), because portfolio workers ship their registries to
the parent over a multiprocessing queue.  The :data:`NULL_METRICS`
singleton is the disabled-mode counterpart: every update is a no-op, so
instrumented code never branches on "is tracing on?" for plain counts.
"""

from __future__ import annotations

import math
from typing import Any, Dict


class Histogram:
    """Log₂-bucketed summary of a stream of non-negative observations."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        #: Bucket exponent → observation count; observation ``v`` maps to
        #: ``frexp(v)[1]`` (the smallest ``e`` with ``v ≤ 2^e``); zero and
        #: negative observations share the sentinel bucket ``None`` → "0".
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        exponent = math.frexp(value)[1] if value > 0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    def mean(self) -> float:
        """Arithmetic mean of every observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile reconstructed from the log₂ buckets.

        The estimate is the geometric midpoint of the bucket holding the
        ``ceil(q·count)``-th observation, clamped to the exact observed
        ``[min, max]`` range so single-bucket histograms stay tight.
        Survives :meth:`merge_dict`: bucket counts and min/max both merge
        exactly, so the post-merge quantile is as accurate as either
        input's.  The error is bounded by the bucket width (a factor of
        two), which is plenty for the scheduler's p50/p90 cost estimates.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.vmin
        rank = math.ceil(q * self.count)
        seen = 0
        for exponent, n in sorted(self.buckets.items()):
            seen += n
            if seen >= rank:
                if exponent == 0 and self.vmin <= 0:
                    # Sentinel bucket: zero/negative observations.
                    return max(self.vmin, 0.0) if self.vmin <= 0 else self.vmin
                # Bucket ``e`` holds v in [2^(e-1), 2^e); midpoint of that
                # span is 1.5 · 2^(e-1).
                estimate = 1.5 * math.pow(2.0, exponent - 1)
                return min(max(estimate, self.vmin), self.vmax)
        return self.vmax  # pragma: no cover - rank <= count always lands

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "buckets": {str(exp): n for exp, n in sorted(self.buckets.items())},
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a serialised histogram into this one."""
        count = int(data.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(data.get("sum", 0.0))
        self.vmin = min(self.vmin, float(data.get("min", math.inf)))
        self.vmax = max(self.vmax, float(data.get("max", -math.inf)))
        for exp, n in data.get("buckets", {}).items():
            exp = int(exp)
            self.buckets[exp] = self.buckets.get(exp, 0) + int(n)

    def summary(self) -> str:
        if self.count == 0:
            return "count=0"
        return (
            f"count={self.count} sum={self.total:.6g} mean={self.mean():.6g} "
            f"min={self.vmin:.6g} max={self.vmax:.6g}"
        )


class MetricsRegistry:
    """Named counters and histograms for one process."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter_add(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter (``default`` when never touched)."""
        return self.counters.get(name, default)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: h.as_dict() for name, h in self.histograms.items()
            },
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a serialised registry (e.g. a worker's) into this one."""
        for name, value in data.get("counters", {}).items():
            self.counter_add(name, value)
        for name, payload in data.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge_dict(payload)

    def summary_lines(self) -> list:
        """Human-readable dump (the CLI's ``--metrics`` output)."""
        lines = []
        for name in sorted(self.counters):
            value = self.counters[name]
            rendered = f"{value:.6g}" if isinstance(value, float) else value
            lines.append(f"  counter {name}: {rendered}")
        for name in sorted(self.histograms):
            lines.append(f"  histogram {name}: {self.histograms[name].summary()}")
        return lines


class NullMetrics:
    """Disabled-mode registry: every update is a no-op."""

    __slots__ = ()

    def counter_add(self, name: str, value: float = 1) -> None:
        pass

    def counter_value(self, name: str, default: float = 0.0) -> float:
        return default

    def observe(self, name: str, value: float) -> None:
        pass

    def as_dict(self) -> Dict[str, Any]:
        return {"counters": {}, "histograms": {}}

    def merge_dict(self, data: Dict[str, Any]) -> None:
        pass

    def summary_lines(self) -> list:
        return []


NULL_METRICS = NullMetrics()
