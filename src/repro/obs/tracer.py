"""Hierarchical span tracing with Chrome ``trace_event`` export.

A :class:`Tracer` records **spans** — named, nestable intervals measured
on the monotonic clock (``time.perf_counter_ns``) — plus instant events
and per-process metadata, and serialises the lot as Chrome
``trace_event`` JSON (the format ``chrome://tracing`` and Perfetto
read).  Nesting is implicit: the trace viewers stack spans of one
``(pid, tid)`` lane by time containment, so the tracer only needs start
and duration, not explicit parent links.

Two clocks are involved:

- span timestamps are *relative* nanoseconds from the tracer's
  ``perf_counter_ns`` origin — monotonic, immune to wall-clock steps;
- each tracer also pins a ``time_ns`` **epoch anchor** at creation, so
  spans recorded by a *child* tracer in another process can be re-based
  onto the parent timeline: ``parent_rel = child_rel + (child_epoch -
  parent_epoch)``.  That is what :meth:`Tracer.merge_child` does with
  the payload a portfolio worker ships back over its result queue.

Disabled tracing must cost nothing.  The module-level
:data:`NULL_TRACER` singleton answers every ``span()`` call with one
shared no-op context manager and swallows all metric updates; hot paths
never allocate when tracing is off.  Span durations are additionally
aggregated into the tracer's :class:`~repro.obs.metrics.MetricsRegistry`
as per-name histograms, so a trace run always yields summary statistics
even without opening the timeline.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

#: One recorded span: (name, category, start_ns, duration_ns, attrs).
SpanTuple = Tuple[str, str, int, int, Optional[Dict[str, Any]]]


class Span:
    """An open span; close it by exiting the ``with`` block.

    Attributes set via :meth:`set` (or the ``span()`` keyword arguments)
    become the ``args`` of the exported Chrome event — keep the values
    JSON-serialisable scalars.
    """

    __slots__ = ("_tracer", "name", "category", "attrs", "start_ns")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self.start_ns = 0

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span (late, e.g. a result count)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.start_ns = self._tracer.now_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        duration = tracer.now_ns() - self.start_ns
        tracer._spans.append(
            (self.name, self.category, self.start_ns, duration, self.attrs)
        )
        tracer.metrics.observe(
            f"span.{self.name}.seconds", duration / 1_000_000_000
        )


class _NullSpan:
    """The shared no-op span of :class:`NullTracer` (never records)."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: every operation is a cached no-op.

    ``enabled`` is ``False`` so instrumentation that must do real work
    to produce an attribute (byte counts, timing a cache probe) can
    skip it entirely; the plain ``span()``/``counter`` calls are cheap
    enough to leave unguarded on batch-level paths.
    """

    enabled = False
    metrics = NULL_METRICS

    def span(self, name: str, category: str = "engine", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "engine", **attrs) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Span recorder for one process.

    Parameters
    ----------
    process_name:
        Human-readable lane title shown by the trace viewers for this
        process (``process_name`` metadata event).
    """

    enabled = True

    def __init__(self, process_name: str = "repro") -> None:
        self.epoch_origin_ns = time.time_ns()
        self._perf_origin_ns = time.perf_counter_ns()
        self.pid = os.getpid()
        self.process_name = process_name
        self.metrics = MetricsRegistry()
        self._spans: List[SpanTuple] = []
        #: Spans merged from child processes: (pid, span tuple).
        self._foreign_spans: List[Tuple[int, SpanTuple]] = []
        self._process_names: Dict[int, str] = {self.pid: process_name}
        self._instants: List[Tuple[str, str, int, Optional[Dict]]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def now_ns(self) -> int:
        """Monotonic nanoseconds since the tracer was created."""
        return time.perf_counter_ns() - self._perf_origin_ns

    def span(self, name: str, category: str = "engine", **attrs) -> Span:
        """Open a span; use as ``with tracer.span("phase.P"): ...``."""
        return Span(self, name, category, attrs or None)

    def instant(self, name: str, category: str = "engine", **attrs) -> None:
        """Record a zero-duration marker event."""
        self._instants.append((name, category, self.now_ns(), attrs or None))

    @property
    def num_spans(self) -> int:
        """Spans recorded so far (own and merged)."""
        return len(self._spans) + len(self._foreign_spans)

    def spans(self) -> List[SpanTuple]:
        """The spans recorded by *this* process (no merged children)."""
        return list(self._spans)

    # ------------------------------------------------------------------
    # Cross-process shipping
    # ------------------------------------------------------------------

    def export_payload(self) -> Dict[str, Any]:
        """Picklable snapshot for shipping to a parent tracer.

        The payload carries the epoch anchor needed for re-basing, the
        recorded spans (timestamps still relative to *this* tracer),
        and the metrics registry.
        """
        return {
            "pid": self.pid,
            "process_name": self.process_name,
            "epoch_origin_ns": self.epoch_origin_ns,
            "spans": list(self._spans),
            "instants": list(self._instants),
            "metrics": self.metrics.as_dict(),
        }

    def merge_child(self, payload: Dict[str, Any]) -> int:
        """Re-base a child tracer's payload onto this timeline.

        Returns the number of spans merged.  Child timestamps are
        shifted by the difference of the two epoch anchors; a child
        whose anchor precedes ours (impossible for processes we forked,
        but defensively handled) is clamped to zero.
        """
        offset = payload["epoch_origin_ns"] - self.epoch_origin_ns
        pid = payload["pid"]
        self._process_names[pid] = payload.get("process_name", f"pid {pid}")
        merged = 0
        for name, category, start_ns, duration_ns, attrs in payload["spans"]:
            rebased = max(0, start_ns + offset)
            self._foreign_spans.append(
                (pid, (name, category, rebased, duration_ns, attrs))
            )
            merged += 1
        for name, category, ts_ns, attrs in payload.get("instants", ()):
            self._foreign_spans.append(
                (pid, (name, category, max(0, ts_ns + offset), 0, attrs))
            )
            merged += 1
        self.metrics.merge_dict(payload.get("metrics", {}))
        return merged

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON object (dict form)."""
        events: List[Dict[str, Any]] = []
        for pid, name in sorted(self._process_names.items()):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        all_spans = [(self.pid, s) for s in self._spans]
        all_spans.extend(self._foreign_spans)
        for pid, (name, category, start_ns, duration_ns, attrs) in all_spans:
            event: Dict[str, Any] = {
                "name": name,
                "cat": category,
                "ph": "X",
                "ts": start_ns / 1000.0,
                "dur": max(duration_ns, 0) / 1000.0,
                "pid": pid,
                "tid": 0,
            }
            if attrs:
                event["args"] = attrs
            events.append(event)
        for name, category, ts_ns, attrs in self._instants:
            event = {
                "name": name,
                "cat": category,
                "ph": "i",
                "ts": ts_ns / 1000.0,
                "pid": self.pid,
                "tid": 0,
                "s": "p",
            }
            if attrs:
                event["args"] = attrs
            events.append(event)
        # Final counter values as Chrome counter ("C") events, stamped at
        # the end of the timeline so trace viewers plot the run totals and
        # tools/check_trace.py can assert over them (e.g. --require-shm).
        counters = getattr(self.metrics, "counters", None)
        if counters:
            end_ts = 0.0
            if all_spans:
                end_ts = max(
                    (span[2] + max(span[3], 0)) / 1000.0
                    for _, span in all_spans
                )
            for name in sorted(counters):
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": end_ts,
                        "pid": self.pid,
                        "tid": 0,
                        "args": {"value": counters[name]},
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs",
                "epoch_origin_ns": self.epoch_origin_ns,
            },
        }

    def write(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path``; returns the path.

        Goes through a temporary file and an atomic rename so a crash
        mid-write never leaves a truncated trace behind.
        """
        payload = self.to_chrome_trace()
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp_path, path)
        return path

    def summary(self) -> Dict[str, Any]:
        """Aggregate span statistics (for bench payloads and ``--metrics``).

        ``seconds_by_category`` and ``seconds_by_name`` sum durations of
        own *and* merged spans, so a portfolio run's summary covers the
        whole fleet.
        """
        by_category: Dict[str, float] = {}
        by_name: Dict[str, Dict[str, float]] = {}
        all_spans = [s for s in self._spans]
        all_spans.extend(s for _pid, s in self._foreign_spans)
        for name, category, _start, duration_ns, _attrs in all_spans:
            seconds = duration_ns / 1_000_000_000
            by_category[category] = by_category.get(category, 0.0) + seconds
            entry = by_name.setdefault(name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += seconds
        return {
            "spans": len(all_spans),
            "processes": len(self._process_names),
            "seconds_by_category": by_category,
            "seconds_by_name": by_name,
        }
