"""Live telemetry primitives: Prometheus exposition, flight recording,
resource sampling.

This module is the process-agnostic half of the telemetry plane (the
serve-daemon half — SLO accounting, the scrape endpoint, ``cec top`` —
lives in :mod:`repro.serve.telemetry`).  Three pieces:

- :func:`encode_prometheus` renders a
  :class:`~repro.obs.metrics.MetricsRegistry` as Prometheus text
  exposition format (version 0.0.4): counters become ``# TYPE …
  counter`` samples with the conventional ``_total`` suffix, and the
  log₂ :class:`~repro.obs.metrics.Histogram`\\ s become cumulative
  ``le``-bucketed histogram series with ``_sum``/``_count`` — the log₂
  exponents *are* the bucket bounds, so no re-binning happens at scrape
  time.  Extra gauges (SLO state, pool health) ride along as labelled
  ``gauge`` samples.
- :class:`FlightRecorder` is a bounded ring of recent structured events
  (job milestones, kills, log records via
  :class:`FlightRecorderHandler`).  Workers ship their new events on
  every result; the parent folds them into a per-worker ring and dumps
  the lot as a postmortem JSON artifact when a worker is staged-killed
  for a crash or deadline — the black box that survives the SIGKILL.
- :class:`ResourceSampler` is a daemon thread sampling per-pid RSS and
  CPU from ``/proc`` into registry histograms, so long-lived pools get
  memory/CPU telemetry without any third-party dependency.

Everything here is stdlib-only by design: the scrape path must work in
the barest container the daemon ships in.
"""

from __future__ import annotations

import json
import logging
import math
import os
import re
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "encode_prometheus",
    "prometheus_name",
    "FlightRecorder",
    "FlightRecorderHandler",
    "ResourceSampler",
    "read_rss_bytes",
    "read_cpu_seconds",
    "proc_available",
]

#: A labelled gauge sample: ``(name, labels, value)``.  ``name`` is
#: sanitised and prefixed by the encoder; labels may be empty.
GaugeSample = Tuple[str, Dict[str, str], float]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted registry name onto a legal Prometheus metric name.

    ``serve.job.latency_seconds`` → ``repro_serve_job_latency_seconds``.
    Any character outside ``[a-zA-Z0-9_:]`` becomes ``_``; a leading
    digit is guarded by the prefix.
    """
    flat = _INVALID_CHARS.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


def _format_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_INVALID_CHARS.sub("_", str(key))}='
        f'"{str(value).translate(_LABEL_ESCAPES)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def encode_prometheus(
    metrics: Any,
    gauges: Optional[Sequence[GaugeSample]] = None,
    prefix: str = "repro",
) -> str:
    """Render a metrics registry as Prometheus text exposition format.

    Parameters
    ----------
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`, or its
        :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` payload (so a
        snapshot shipped over the wire encodes identically).
    gauges:
        Extra ``(name, labels, value)`` gauge samples appended after the
        registry series — the hook for SLO state, pool health, uptime.
    prefix:
        Metric-name prefix (no trailing underscore).

    Counters get the conventional ``_total`` suffix; histograms expand
    to cumulative ``le`` buckets whose upper bounds are the log₂ bucket
    boundaries (``2^e``) plus the mandatory ``+Inf``, followed by
    ``_sum`` and ``_count``.  Families are emitted sorted by name so the
    output is deterministic and diff-friendly.
    """
    if hasattr(metrics, "as_dict"):
        payload = metrics.as_dict()
    elif isinstance(metrics, dict):
        payload = metrics
    else:
        raise TypeError(f"cannot encode metrics of type {type(metrics)!r}")
    counters: Dict[str, float] = dict(payload.get("counters", {}))
    histograms: Dict[str, Any] = dict(payload.get("histograms", {}))

    lines: List[str] = []
    for name in sorted(counters):
        metric = prometheus_name(name, prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# HELP {metric} Monotonic counter {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(float(counters[name]))}")

    for name in sorted(histograms):
        histogram = histograms[name]
        if isinstance(histogram, Histogram):
            histogram = histogram.as_dict()
        metric = prometheus_name(name, prefix)
        lines.append(f"# HELP {metric} Log2-bucketed histogram {name}.")
        lines.append(f"# TYPE {metric} histogram")
        count = int(histogram.get("count", 0))
        cumulative = 0
        for exponent, bucket_count in sorted(
            (int(exp), int(n))
            for exp, n in histogram.get("buckets", {}).items()
        ):
            cumulative += bucket_count
            le = _format_value(math.pow(2.0, exponent))
            lines.append(
                f'{metric}_bucket{{le="{le}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(
            f"{metric}_sum {_format_value(float(histogram.get('sum', 0.0)))}"
        )
        lines.append(f"{metric}_count {count}")

    seen_gauge_types = set()
    for name, labels, value in gauges or ():
        metric = prometheus_name(name, prefix)
        if metric not in seen_gauge_types:
            seen_gauge_types.add(metric)
            lines.append(f"# HELP {metric} Gauge {name}.")
            lines.append(f"# TYPE {metric} gauge")
        lines.append(
            f"{metric}{_format_labels(labels)} {_format_value(float(value))}"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class FlightRecorder:
    """A bounded ring of recent structured events — the black box.

    Events are plain dicts with a monotonically-increasing ``seq``, a
    wall-clock ``ts``, a ``kind`` (``job``/``kill``/``log``/…), a
    ``name``, and arbitrary JSON-scalar fields.  The ring keeps only
    the newest ``capacity`` events, so a worker that serves thousands
    of jobs still ships a few-KB postmortem.

    Two usage patterns:

    - *worker side*: ``record(...)`` during jobs, ``take_new()`` on
      every result message (ships only events not shipped before);
    - *parent side*: one recorder per worker, ``extend(...)`` with each
      shipped batch plus parent-recorded milestones, ``to_json()`` into
      the postmortem artifact at kill time.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._seq = 0
        self._shipped_seq = 0
        self._lock = threading.Lock()

    def record(
        self, kind: str, name: str, /, **fields: Any
    ) -> Dict[str, Any]:
        """Append one event; returns the event dict.

        ``kind`` and ``name`` are positional-only so field names are
        unrestricted (``record('job', 'submitted', name=...)`` works).
        """
        with self._lock:
            self._seq += 1
            event: Dict[str, Any] = {
                "seq": self._seq,
                "ts": round(time.time(), 6),
                "kind": kind,
                "name": name,
            }
            for key, value in fields.items():
                if value is not None:
                    event[key] = value
            self._events.append(event)
            return event

    def extend(self, events: Iterable[Dict[str, Any]]) -> int:
        """Fold foreign events (a worker's shipped batch) into the ring.

        Foreign sequence numbers are preserved under a ``worker_seq``
        key; the ring assigns its own ``seq`` so ordering stays total
        even when parent milestones interleave with shipped batches.
        """
        folded = 0
        for event in events:
            if not isinstance(event, dict):
                continue
            fields = {
                key: value
                for key, value in event.items()
                if key not in ("seq", "kind", "name")
            }
            if "seq" in event:
                fields["worker_seq"] = event["seq"]
            recorded = self.record(
                str(event.get("kind", "event")),
                str(event.get("name", "")),
                **fields,
            )
            # Keep the original wall clock: the worker stamped it at the
            # moment the event actually happened.
            if "ts" in event:
                recorded["ts"] = event["ts"]
            folded += 1
        return folded

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def take_new(self) -> List[Dict[str, Any]]:
        """Events recorded since the previous ``take_new`` call."""
        with self._lock:
            fresh = [e for e in self._events if e["seq"] > self._shipped_seq]
            self._shipped_seq = self._seq
            return fresh

    def __len__(self) -> int:
        return len(self._events)

    def to_json(self) -> List[Dict[str, Any]]:
        """JSON-safe copy of the ring (non-serialisable fields dropped)."""
        safe: List[Dict[str, Any]] = []
        for event in self.events():
            try:
                json.dumps(event)
                safe.append(event)
            except (TypeError, ValueError):
                safe.append(
                    {
                        key: value
                        for key, value in event.items()
                        if isinstance(
                            value, (str, int, float, bool, type(None))
                        )
                    }
                )
        return safe


class FlightRecorderHandler(logging.Handler):
    """A logging handler feeding records into a :class:`FlightRecorder`.

    Attach to the ``repro`` logger so diagnostic log lines land in the
    black box alongside job milestones — the postmortem then shows what
    the worker *said* right before it died, not just what it did.
    """

    def __init__(
        self, recorder: FlightRecorder, level: int = logging.DEBUG
    ) -> None:
        super().__init__(level=level)
        self.recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.recorder.record(
                "log",
                record.name,
                level=record.levelname.lower(),
                msg=record.getMessage(),
                **{
                    str(k): v
                    for k, v in sorted(
                        getattr(record, "kv", {}).items()
                    )
                    if str(k) not in ("level", "msg")
                },
            )
        except Exception:  # pragma: no cover - never break the app on logging
            self.handleError(record)


# ----------------------------------------------------------------------
# Resource sampling
# ----------------------------------------------------------------------

_PAGE_SIZE = 4096
try:  # pragma: no cover - constant probe
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):
    pass

_CLK_TCK = 100.0
try:  # pragma: no cover - constant probe
    _CLK_TCK = float(os.sysconf("SC_CLK_TCK"))
except (AttributeError, ValueError, OSError):
    pass


def proc_available() -> bool:
    """True when the Linux ``/proc`` filesystem is readable."""
    return os.path.isdir("/proc/self")


def read_rss_bytes(pid: Optional[int] = None) -> Optional[float]:
    """Resident-set size of ``pid`` (default: this process) in bytes.

    Reads ``/proc/<pid>/statm``; for the calling process it falls back
    to ``resource.getrusage`` where ``/proc`` is absent (macOS).  Returns
    ``None`` when the process is gone or unreadable.
    """
    target = os.getpid() if pid is None else pid
    try:
        with open(f"/proc/{target}/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return float(int(fields[1]) * _PAGE_SIZE)
    except (OSError, IndexError, ValueError):
        if pid is None or target == os.getpid():
            try:
                import resource

                rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                # Linux reports KB, macOS bytes; both only reach this
                # path without /proc, i.e. macOS.
                return float(rss_kb)
            except Exception:
                return None
        return None


def read_cpu_seconds(pid: Optional[int] = None) -> Optional[float]:
    """Cumulative user+system CPU seconds of ``pid`` (``/proc`` only)."""
    target = os.getpid() if pid is None else pid
    try:
        with open(f"/proc/{target}/stat", "r", encoding="ascii") as handle:
            stat = handle.read()
        # Field 2 (comm) may contain spaces; split after the closing paren.
        after = stat.rsplit(")", 1)[1].split()
        utime, stime = int(after[11]), int(after[12])
        return (utime + stime) / _CLK_TCK
    except (OSError, IndexError, ValueError):
        return None


class ResourceSampler(threading.Thread):
    """Daemon thread sampling per-pid RSS/CPU into registry histograms.

    Parameters
    ----------
    pids:
        Zero-argument callable returning the pids to sample on each
        tick (dead or unreadable pids are skipped silently — workers
        come and go).
    metrics:
        The registry receiving ``<prefix>.rss_bytes`` and
        ``<prefix>.cpu_percent`` histogram observations plus a
        ``<prefix>.samples`` counter.
    interval:
        Seconds between sampling ticks.
    """

    def __init__(
        self,
        pids: Callable[[], Iterable[Optional[int]]],
        metrics: MetricsRegistry,
        prefix: str = "proc",
        interval: float = 0.5,
    ) -> None:
        super().__init__(name=f"resource-sampler:{prefix}", daemon=True)
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._pids = pids
        self.metrics = metrics
        self.prefix = prefix
        self.interval = interval
        self._stop_event = threading.Event()
        #: pid → (cpu_seconds, monotonic) of the previous tick, for the
        #: cpu_percent delta.
        self._last_cpu: Dict[int, Tuple[float, float]] = {}
        #: Latest RSS per pid (gauge-style snapshot for stats payloads).
        self.last_rss: Dict[int, float] = {}

    def sample_once(self) -> int:
        """One sampling tick; returns the number of pids sampled."""
        sampled = 0
        now = time.monotonic()
        live: Dict[int, float] = {}
        for pid in list(self._pids() or ()):
            if pid is None:
                continue
            rss = read_rss_bytes(pid)
            if rss is None:
                self._last_cpu.pop(pid, None)
                continue
            sampled += 1
            live[pid] = rss
            self.metrics.observe(f"{self.prefix}.rss_bytes", rss)
            cpu = read_cpu_seconds(pid)
            if cpu is not None:
                previous = self._last_cpu.get(pid)
                self._last_cpu[pid] = (cpu, now)
                if previous is not None and now > previous[1]:
                    percent = max(
                        0.0, 100.0 * (cpu - previous[0]) / (now - previous[1])
                    )
                    self.metrics.observe(
                        f"{self.prefix}.cpu_percent", percent
                    )
        self.last_rss = live
        if sampled:
            self.metrics.counter_add(f"{self.prefix}.samples", sampled)
        return sampled

    def run(self) -> None:  # pragma: no cover - exercised via threads
        while not self._stop_event.wait(self.interval):
            try:
                self.sample_once()
            except Exception:
                # Sampling must never take the host process down.
                pass

    def stop(self, join_timeout: float = 2.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(join_timeout)
