"""Observability: tracing, metrics, and structured logging (``repro.obs``).

The subsystem has three pieces:

- :mod:`repro.obs.tracer` — hierarchical span tracing on monotonic
  clocks, exported as Chrome ``trace_event`` JSON (open the file in
  ``chrome://tracing`` or https://ui.perfetto.dev), with cross-process
  merging for the parallel portfolio;
- :mod:`repro.obs.metrics` — named counters and log₂-bucketed
  histograms, mergeable across processes;
- :mod:`repro.obs.logging` — the ``repro`` stderr ``key=value`` logger
  used by the CLI for diagnostics.

One **ambient tracer** per process is held here.  It defaults to
:data:`~repro.obs.tracer.NULL_TRACER` (tracing disabled, every call a
cached no-op), so instrumentation costs nothing unless someone calls
:func:`set_tracer` — the CLI's ``--trace``/``--metrics`` flags, the
bench harness, or a portfolio worker re-creating its child tracer.

See ``docs/observability.md`` for the span taxonomy and metrics
glossary.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Union

from repro.obs.logging import JsonFormatter, configure_logging, get_logger
from repro.obs.metrics import NULL_METRICS, Histogram, MetricsRegistry, NullMetrics
from repro.obs.telemetry import (
    FlightRecorder,
    FlightRecorderHandler,
    ResourceSampler,
    encode_prometheus,
    read_cpu_seconds,
    read_rss_bytes,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullMetrics",
    "Histogram",
    "NULL_METRICS",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "configure_logging",
    "get_logger",
    "JsonFormatter",
    "encode_prometheus",
    "FlightRecorder",
    "FlightRecorderHandler",
    "ResourceSampler",
    "read_rss_bytes",
    "read_cpu_seconds",
]

_TRACER: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-ambient tracer (the null tracer when disabled)."""
    return _TRACER


def set_tracer(
    tracer: Optional[Union[Tracer, NullTracer]]
) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` as the ambient tracer (``None`` disables)."""
    global _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return _TRACER


@contextmanager
def use_tracer(tracer: Optional[Union[Tracer, NullTracer]]):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
