"""Structured logging for the CLI and long-running services.

Diagnostics (phase progress, portfolio summaries, failures) go through
one ``repro`` logger hierarchy writing ``key=value`` lines to *stderr*,
so ``cec … > out.txt`` captures only the verdict/report payload on
stdout.  :func:`configure_logging` is idempotent per call: it replaces
the handler it previously installed (and re-binds the current
``sys.stderr``, which matters under test harnesses that swap the
stream) without touching handlers installed by embedding applications.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional, TextIO

ROOT_LOGGER_NAME = "repro"

#: Marker attribute identifying the handler we installed.
_HANDLER_FLAG = "_repro_obs_handler"

LEVELS = ("debug", "info", "warning", "error", "critical")


class KeyValueFormatter(logging.Formatter):
    """``ts=… level=… logger=… msg="…"`` single-line records.

    Extra structured fields can be passed per-record via
    ``logger.info("msg", extra={"kv": {"engine": "sat"}})`` and are
    appended as further ``key=value`` pairs.
    """

    def format(self, record: logging.LogRecord) -> str:
        timestamp = time.strftime(
            "%H:%M:%S", time.localtime(record.created)
        )
        message = record.getMessage()
        if record.exc_info and record.exc_info[0] is not None:
            message = f"{message} exc={record.exc_info[0].__name__}"
        parts = [
            f"ts={timestamp}.{int(record.msecs):03d}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
        ]
        for key, value in sorted(getattr(record, "kv", {}).items()):
            parts.append(f"{key}={value}")
        parts.append(f'msg="{message}"')
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per line: machine-ingestible daemon logs.

    Keys: ``ts`` (epoch seconds, float), ``level``, ``logger``, ``msg``,
    plus any per-record structured fields passed via
    ``extra={"kv": {...}}`` and ``exc`` when an exception is attached.
    Selected with ``cec … --log-json``; :class:`KeyValueFormatter`
    stays the default for humans.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in sorted(getattr(record, "kv", {}).items()):
            if key not in payload:
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = record.exc_info[0].__name__
        return json.dumps(payload, default=str, separators=(",", ":"))


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: str = "warning",
    stream: Optional[TextIO] = None,
    json_format: bool = False,
) -> logging.Logger:
    """Install (or refresh) the stderr structured-log handler.

    Parameters
    ----------
    level:
        One of ``debug``/``info``/``warning``/``error``/``critical``.
    stream:
        Output stream; defaults to the *current* ``sys.stderr`` so the
        payload on stdout stays machine-readable.
    json_format:
        Emit one JSON object per line (:class:`JsonFormatter`) instead
        of human-readable ``key=value`` records.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} (choices: {LEVELS})")
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_format else KeyValueFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    return logger
