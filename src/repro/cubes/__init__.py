"""Cube-and-conquer splitting of hard residue queries (ROADMAP item 3).

The sim-sweeping portfolio occasionally leaves a *hard residue*: a
handful of deep miter POs whose monolithic SAT query the interpreted
CDCL solver cannot settle in any reasonable budget.  This package
attacks those queries with the classic cube-and-conquer move — cofactor
the cone on a few high-influence PIs, producing 2^k smaller, mutually
disjoint and jointly exhaustive sub-problems, and race them:

- :mod:`repro.cubes.split` — choosing split PIs, enumerating cubes and
  building the cofactored networks (pure structural work, fully tested
  by an exhaustiveness/disjointness property test);
- :mod:`repro.cubes.runner` — the distributed race: cube jobs fan out
  across warm :class:`~repro.exec.runtime.ExecRuntime` workers as
  cancellable siblings of the monolithic query, the first conclusive
  winner (any-SAT, or UNSAT of the monolith, or UNSAT of *all* cubes)
  cancels the rest through a :class:`~repro.exec.cancel.CancelGroup`;
- :mod:`repro.cubes.lane` — the scheduler-facing surface: the in-process
  ``"cube"`` dispatch lane and :func:`prove_pos_with_cubes`, the final
  PO proof that routes predicted-hard POs through the distributed race;
- :mod:`repro.cubes.checker` — :class:`CubeChecker`, the standalone
  ``--engine cube`` baseline that races *every* raw miter PO without
  any sweeping front end.

Soundness rests on one invariant, proved in ``tests/test_cubes.py``:
the cubes over any split-PI set are pairwise disjoint and exhaustive,
so "every cube UNSAT" is exactly equivalent to "the query is UNSAT",
and any single SAT cube yields a genuine counter-example after the
cube's assignments are patched back into the model.
"""

from repro.cubes.checker import CubeChecker
from repro.cubes.lane import (
    CubeLane,
    THRESHOLD_ENV,
    WORKERS_ENV,
    cube_threshold,
    cube_workers,
    prove_pos_with_cubes,
)
from repro.cubes.runner import CubeOutcome, CubeRunner, run_cube_job
from repro.cubes.split import (
    Cube,
    choose_split_pis,
    cofactor,
    enumerate_cubes,
    patch_pattern,
)

__all__ = [
    "Cube",
    "CubeChecker",
    "CubeLane",
    "CubeOutcome",
    "CubeRunner",
    "THRESHOLD_ENV",
    "WORKERS_ENV",
    "choose_split_pis",
    "cofactor",
    "cube_threshold",
    "cube_workers",
    "enumerate_cubes",
    "patch_pattern",
    "prove_pos_with_cubes",
    "run_cube_job",
]
