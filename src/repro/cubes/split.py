"""Cofactor/cube splitting of a miter cone.

A *cube* is a partial assignment to a few PIs.  Splitting a query on
``k`` PIs produces the ``2^k`` cubes of every assignment combination —
by construction pairwise disjoint (two distinct assignments differ in
some PI) and jointly exhaustive (every full input pattern extends
exactly one of them).  That is the entire soundness argument of the
cube race: the original query is SAT iff some cube is SAT, and UNSAT
iff every cube is UNSAT.

Split-PI selection is a pure heuristic (it affects speed, never the
verdict): PIs are ranked by fanout count in the cone, on the intuition
that fixing a high-fanout input propagates the most constants through
:func:`cofactor` and therefore shrinks the sub-problems the most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.aig.literals import CONST0, CONST1
from repro.aig.network import Aig
from repro.aig.transform import rebuild_with_replacements


@dataclass(frozen=True)
class Cube:
    """One partial PI assignment: ``((pi_node, value), ...)``.

    The empty cube (no assignments) denotes the monolithic, unsplit
    query; :meth:`is_monolith` names that case at call sites.
    """

    assignments: Tuple[Tuple[int, int], ...] = ()

    @property
    def is_monolith(self) -> bool:
        return not self.assignments

    def as_list(self) -> List[List[int]]:
        """JSON/pickle-friendly view for job payloads."""
        return [[pi, value] for pi, value in self.assignments]

    @classmethod
    def from_list(cls, data: Sequence[Sequence[int]]) -> "Cube":
        return cls(tuple((int(pi), int(v)) for pi, v in data))

    def __str__(self) -> str:
        if self.is_monolith:
            return "monolith"
        return ",".join(f"pi{pi}={v}" for pi, v in self.assignments)


def choose_split_pis(aig: Aig, k: int) -> List[int]:
    """Pick up to ``k`` split PIs, highest fanout first.

    Ties break towards the smaller node id so the choice — and with it
    the whole cube decomposition — is deterministic for a given
    network.  PIs with zero fanout are never picked: cofactoring them
    cannot simplify anything.
    """
    if k <= 0:
        return []
    fanouts = aig.fanout_counts()
    ranked = sorted(
        (pi for pi in aig.pis() if fanouts[pi] > 0),
        key=lambda pi: (-int(fanouts[pi]), pi),
    )
    return ranked[:k]


def enumerate_cubes(pis: Sequence[int]) -> List[Cube]:
    """All ``2^len(pis)`` cubes over the given PIs.

    The enumeration order is the binary count of the assignment word,
    so cube ``i`` assigns PI ``j`` the value of bit ``j`` of ``i`` —
    deterministic, and trivially exhaustive and pairwise disjoint.
    """
    pis = list(pis)
    if not pis:
        return [Cube()]
    return [
        Cube(tuple((pi, (word >> j) & 1) for j, pi in enumerate(pis)))
        for word in range(1 << len(pis))
    ]


def cofactor(aig: Aig, cube: Cube) -> Aig:
    """The cofactor of ``aig`` under a cube's assignments.

    Each assigned PI is replaced by the corresponding constant and the
    network is rebuilt with constant propagation and strashing — the
    structural simplification that makes cube jobs cheaper than the
    monolith.  The PI *interface is preserved* (assigned PIs remain as
    now-dangling inputs), so PI indices — and therefore counter-example
    patterns — mean the same thing in every cofactor.
    """
    if cube.is_monolith:
        return aig
    replacements: Dict[int, int] = {
        pi: CONST1 if value else CONST0 for pi, value in cube.assignments
    }
    reduced, _ = rebuild_with_replacements(aig, replacements, name=aig.name)
    return reduced


def patch_pattern(pattern: Sequence[int], aig: Aig, cube: Cube) -> List[int]:
    """Overlay a cube's assignments onto a cofactor's cex pattern.

    A model of a cofactored network leaves the assigned PIs
    unconstrained (they are dangling there); forcing them back to the
    cube's values turns the model into a counter-example of the
    *original* network.
    """
    patched = list(pattern)
    first_pi = 1  # PIs occupy node ids 1..num_pis
    for pi, value in cube.assignments:
        patched[pi - first_pi] = value
    return patched
