"""Standalone distributed cube-and-conquer CEC (``--engine cube``).

The sweeping engines earn their keep by *shrinking* the miter before
SAT ever runs; this checker is the opposite baseline — no simulation,
no sweeping, no equivalence classes.  Every miter PO is extracted as a
single-PO cone and settled by a :class:`~repro.cubes.runner.CubeRunner`
race: the monolithic query plus its 2^k cofactor cubes fan out across
warm workers and the first conclusive sibling cancels the rest.

Two reasons it exists as a first-class engine rather than only as the
final-PO accelerator inside the adaptive flow:

- it is the paper-adjacent cube-and-conquer baseline the combined
  engine should beat, measurable with the same CLI/bench plumbing as
  every other engine;
- it exercises the *distributed* cube race end to end from the CLI on
  any input, which is what CI's ``--require-cubes`` trace gate runs —
  the sweeping front ends prove the generated pairs so thoroughly that
  a non-constant PO almost never survives to the in-flow race.

Implementation: :func:`~repro.cubes.lane.prove_pos_with_cubes` over a
fresh un-swept :class:`~repro.sweep.state.SweepState`, with the hard-PO
threshold floored at zero so *every* non-constant PO races.  Anything a
race leaves unknown falls through to the same batched SAT backstop as
the adaptive flow, so the engine is complete at its conflict limit.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.obs import get_tracer
from repro.sweep.engine import CecResult
from repro.sweep.report import PhaseRecord
from repro.sweep.state import SweepState

from repro.cubes.lane import DEFAULT_SPLIT_K, prove_pos_with_cubes


class CubeChecker:
    """Pure distributed cube-and-conquer over the raw miter POs.

    Parameters
    ----------
    time_limit:
        Optional wall-clock budget in seconds for the whole check.
    conflict_limit:
        Per-query CDCL conflict budget (same meaning as the SAT
        sweeper's; the backstop runs at this limit too).
    workers:
        Cube race pool size (default: ``REPRO_CUBE_WORKERS`` or 3).
    split_k:
        Cofactor split width — 2^k cubes race beside the monolith.
    """

    def __init__(
        self,
        time_limit: Optional[float] = None,
        conflict_limit: int = 100_000,
        workers: Optional[int] = None,
        split_k: int = DEFAULT_SPLIT_K,
        cache=None,
    ) -> None:
        self.time_limit = time_limit
        self.conflict_limit = conflict_limit
        self.workers = workers
        self.split_k = split_k
        self.cache = cache
        #: Stats of the last run (PhaseRecord duck-typing the bench rows).
        self.record = PhaseRecord(kind="cube")

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Race every miter PO as a monolith + cofactor-cube fan-out."""
        deadline = (
            time.perf_counter() + self.time_limit
            if self.time_limit is not None
            else None
        )
        sweep = SweepState(miter)
        self.record = PhaseRecord(kind="cube")
        start = time.perf_counter()
        with get_tracer().span(
            "cubes.check", category="cubes", pos=len(miter.pos)
        ):
            result = prove_pos_with_cubes(
                sweep,
                self.cache,
                self.conflict_limit,
                deadline,
                self.record,
                threshold=0.0,
                split_k=self.split_k,
                workers=self.workers,
            )
        self.record.seconds = time.perf_counter() - start
        self.record.miter_ands_after = sweep.network().num_ands
        return result
