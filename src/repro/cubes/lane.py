"""The scheduler-facing cube surface: the ``"cube"`` lane and the
cube-accelerated final PO proof.

Two consumers of the same splitting core:

- :class:`CubeLane` is an *in-process* dispatch lane, a drop-in peer of
  :class:`~repro.sched.lanes.SatBatchLane`: a routed pair's
  XOR-difference query is split into per-cube assumption solves on the
  round's shared solver.  All cubes UNSAT proves the pair (the cubes
  are exhaustive), any SAT model is a genuine counter-example, any
  blown budget reroutes the pair to the SAT backstop — sound whichever
  way it ends, which is what lets ``REPRO_SCHED_FORCE=cube`` pin every
  dispatch here in the soundness tests.
- :func:`prove_pos_with_cubes` wraps the final PO proof: POs whose
  predicted SAT latency (the cost model's static seed) clears the
  threshold are extracted as single-PO cones and raced on a
  :class:`~repro.cubes.runner.CubeRunner` worker pool; everything else
  — and anything the race leaves unknown — falls through to the
  classic :func:`~repro.sched.lanes.prove_pos_batched` backstop.

Knobs: ``REPRO_CUBE_THRESHOLD`` (predicted seconds above which a PO is
"hard"; ``0`` routes every final PO through the race; unset disables
the distributed path entirely) and ``REPRO_CUBE_WORKERS`` (race pool
size, default 3).
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

from repro.aig.literals import CONST0, lit, lit_is_const, lit_var
from repro.aig.transform import cone_aig
from repro.obs import get_tracer
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver, SolveStatus
from repro.sweep.engine import CecResult, CecStatus

from repro.cubes.runner import CubeOutcome, CubeRunner
from repro.cubes.split import choose_split_pis, enumerate_cubes

#: Predicted-latency threshold (seconds) above which a final PO is
#: routed through the distributed cube race.  Unset disables the race.
THRESHOLD_ENV = "REPRO_CUBE_THRESHOLD"

#: Worker count of the cube race pool.
WORKERS_ENV = "REPRO_CUBE_WORKERS"

#: Default split width: 2 PIs → 4 cubes (+ the monolith sibling).
DEFAULT_SPLIT_K = 2

#: The cost model's static SAT seed (``CostModel.static_cost("sat")``),
#: mirrored here so the hard-PO predicate and the lane costs agree.
SAT_SEED_BASE = 3e-3
SAT_SEED_PER_LEVEL = 1.5e-4


def cube_threshold() -> Optional[float]:
    """The ``REPRO_CUBE_THRESHOLD`` value, or ``None`` when disabled."""
    raw = os.environ.get(THRESHOLD_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def cube_workers(default: int = 3) -> int:
    """The ``REPRO_CUBE_WORKERS`` pool size (≥ 1)."""
    raw = os.environ.get(WORKERS_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return max(1, default)


def predicted_po_cost(level: int) -> float:
    """Static SAT-latency estimate of one final-PO proof (seconds)."""
    return SAT_SEED_BASE + SAT_SEED_PER_LEVEL * level


class CubeLane:
    """Per-pair cube splitting on the round's shared solver.

    Splits each pair query on the miter's highest-fanout PIs: the
    2^k cube solves each carry the pair selector plus the cube's PI
    assumptions, so the shared CNF is reused across cubes *and* across
    pairs exactly like the SAT batch lane.  Per-cube conflict budgets
    divide the pair budget, keeping a routed pair's worst case
    comparable to the SAT lane's.
    """

    name = "cube"

    def __init__(
        self, config=None, conflict_budget: int = 1_000,
        split_k: int = DEFAULT_SPLIT_K,
    ) -> None:
        self.conflict_budget = conflict_budget
        self.split_k = max(1, split_k)

    def budget_for(self, f) -> int:
        """Whole-pair conflict budget (split across the cubes)."""
        return int(self.conflict_budget * (1.0 + min(f.level, 96) / 48.0))

    def run(self, ctx, pairs, model):
        from repro.sched.lanes import LaneOutcome, _expired

        out = LaneOutcome()
        if not pairs:
            return out
        metrics = get_tracer().metrics
        split_pis = choose_split_pis(ctx.miter, self.split_k)
        cubes = enumerate_cubes(split_pis)
        metrics.counter_add("cubes.pairs", len(pairs))
        solver = SatSolver()
        cnf = CnfBuilder(ctx.miter, solver)
        bound = ctx.bound
        for rp in pairs:
            if _expired(ctx.deadline):
                out.unresolved.append(rp)
                continue
            budget = max(100, self.budget_for(rp.features) // len(cubes))
            start = time.perf_counter()
            metrics.counter_add("cubes.split", len(cubes))
            sel, sol_a, sol_b = cnf.open_pair_query(rp.lit_r, rp.lit_n)
            verdict = "unsat"
            pattern: Optional[List[int]] = None
            for cube in cubes:
                assumptions = [sel] + [
                    cnf.literal(lit(pi, 0 if value else 1))
                    for pi, value in cube.assignments
                ]
                status = solver.solve(
                    assumptions=assumptions,
                    conflict_limit=budget,
                    deadline=ctx.deadline,
                )
                if status is SolveStatus.SAT:
                    verdict = "sat"
                    pattern = cnf.pi_pattern_from_model()
                    break
                if status is SolveStatus.UNKNOWN:
                    verdict = "unknown"
                    break
            cnf.retire_query(sel)
            seconds = time.perf_counter() - start
            if verdict == "unsat":
                # Every cube refuted the difference and the cubes are
                # exhaustive: the pair is proved.
                cnf.assert_equal(sol_a, sol_b)
                out.merges[rp.node] = (rp.repr_node, rp.phase)
                model.record(self.name, rp.features, seconds, resolved=True)
                if bound is not None:
                    bound.record_equivalent(
                        rp.lit_r, rp.lit_n, engine="cube", context="SCHED",
                        seconds=seconds,
                    )
            elif verdict == "sat":
                out.cex_patterns.append(pattern)
                model.record(self.name, rp.features, seconds, resolved=True)
                if bound is not None:
                    bound.record_nonequivalent(
                        rp.lit_r, rp.lit_n, pattern, engine="cube",
                        context="SCHED", seconds=seconds,
                    )
            else:
                out.unresolved.append(rp)
                model.record(self.name, rp.features, seconds, resolved=False)
        return out


def prove_pos_with_cubes(
    sweep,
    cache,
    conflict_limit: int,
    deadline: Optional[float],
    record,
    threshold: Optional[float] = None,
    runner: Optional[CubeRunner] = None,
    split_k: int = DEFAULT_SPLIT_K,
    workers: Optional[int] = None,
) -> CecResult:
    """Final PO proof with the hard POs raced as cube fan-outs.

    Drop-in replacement for :func:`~repro.sched.lanes.prove_pos_batched`
    with identical verdict semantics: hard POs (predicted cost ≥
    ``threshold``) are settled by a :class:`CubeRunner` race over their
    single-PO cones, then everything still open falls through to the
    batched backstop.  A race that ends unknown records an inconclusive
    cache verdict at the full conflict limit, so a cache-backed run
    skips the doomed monolithic retry in the backstop.
    """
    from repro.sched.lanes import _expired, prove_pos_batched

    if threshold is None:
        threshold = cube_threshold()
    miter = sweep.network()
    if threshold is None:
        return prove_pos_batched(sweep, cache, conflict_limit, deadline, record)
    levels = miter.levels()
    hard = [
        i
        for i, po in enumerate(miter.pos)
        if not lit_is_const(po)
        and predicted_po_cost(int(levels[lit_var(po)])) >= threshold
    ]
    if not hard:
        return prove_pos_batched(sweep, cache, conflict_limit, deadline, record)

    tracer = get_tracer()
    bound = sweep.bound_cache(cache)
    new_pos = list(miter.pos)
    owns_runner = runner is None
    if owns_runner:
        runner = CubeRunner(
            num_workers=workers if workers is not None else cube_workers(),
            trace=tracer.enabled,
        )
    try:
        for i in hard:
            po = miter.pos[i]
            if _expired(deadline):
                break
            record.candidates += 1
            if bound is not None:
                known = bound.lookup_pair(po, CONST0, want_inconclusive=True)
                if known is not None:
                    if known.is_equivalent:
                        new_pos[i] = CONST0
                        record.proved += 1
                        continue
                    if known.is_nonequivalent:
                        return CecResult(
                            CecStatus.NONEQUIVALENT, cex=known.cex
                        )
                    if known.conflict_limit >= conflict_limit:
                        continue
            cone = cone_aig(miter, [i])
            cubes = enumerate_cubes(choose_split_pis(cone, split_k))
            po_start = time.perf_counter()
            with tracer.span(
                "cubes.po", category="cubes", po_index=i,
                cubes=len(cubes),
            ):
                outcome: CubeOutcome = runner.solve(
                    cone,
                    cubes,
                    conflict_limit=conflict_limit,
                    deadline=deadline,
                )
            seconds = time.perf_counter() - po_start
            tracer.metrics.observe("cubes.po_seconds", seconds)
            if outcome.status == "nonequivalent":
                record.cex += 1
                if bound is not None:
                    bound.record_nonequivalent(
                        po, CONST0, outcome.cex, engine="cube",
                        context="PO", seconds=seconds,
                    )
                return CecResult(CecStatus.NONEQUIVALENT, cex=outcome.cex)
            if outcome.status == "equivalent":
                new_pos[i] = CONST0
                record.proved += 1
                if bound is not None:
                    bound.record_equivalent(
                        po, CONST0, engine="cube", context="PO",
                        seconds=seconds,
                    )
            elif bound is not None and not _expired(deadline):
                bound.record_inconclusive(
                    po, CONST0, engine="cube", context="PO",
                    conflict_limit=conflict_limit, seconds=seconds,
                )
    finally:
        if owns_runner:
            runner.close()
    sweep.set_pos(new_pos)
    return prove_pos_batched(sweep, cache, conflict_limit, deadline, record)
