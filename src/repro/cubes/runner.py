"""The distributed cube race: cofactor jobs under first-winner cancel.

:class:`CubeRunner` turns one hard SAT query — "is any PO of this cone
satisfiable?" — into a family of cancellable sibling jobs on a warm
:class:`~repro.exec.runtime.ExecRuntime` worker pool: the monolithic
query plus one cofactor job per cube.  The race settles the moment any
sibling is conclusive for the whole query:

- any job (cube or monolith) finds a model → **SAT**, with the cube's
  assignments patched back into the counter-example;
- the monolith proves UNSAT → **UNSAT**;
- *every* cube proves UNSAT → **UNSAT** (the cubes are exhaustive).

The winner cancels the rest through a
:class:`~repro.exec.cancel.CancelGroup`: losers still queued on the
:class:`~repro.exec.board.JobBoard` are revoked for free, losers already
running are staged-killed (SIGTERM → SIGKILL) and their workers
respawned lazily before the next race.  ``cubes.split`` counts fanned-out
cube jobs, ``cubes.cancelled`` counts cancelled losers — the pair of
counters ``tools/check_trace.py --require-cubes`` gates CI on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aig.literals import CONST0, lit_is_const
from repro.aig.network import Aig
from repro.obs import get_tracer
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver, SolveStatus
from repro.shm import SegmentDescriptor, adopt_aig

from repro.cubes.split import Cube, cofactor, patch_pattern
from repro.exec import (
    REASON_TIMEOUT,
    CancelGroup,
    ExecRuntime,
    JobBoard,
    WorkerHandle,
)

#: Job label of the unsplit sibling in stats and flight events.
MONOLITH = "monolith"


def _solver_deadline(deadline_epoch: Optional[float]) -> Optional[float]:
    """Convert a wall-clock (epoch) deadline to this process's
    ``perf_counter`` timebase (what :meth:`SatSolver.solve` expects)."""
    if deadline_epoch is None:
        return None
    return time.perf_counter() + (deadline_epoch - time.time())


def run_cube_job(message: Dict, ctx) -> Dict:
    """Loop-mode job handler: solve one cofactor of the shipped cone.

    The cone arrives either as a segment reference (``"aig_ref"``,
    adopted zero-copy off the run registry) or inline (``"aig"``).  The
    cofactor under the job's cube is built locally — constant
    propagation through :func:`~repro.cubes.split.cofactor` is exactly
    what makes the sub-problem cheaper than the monolith — and the
    query "some PO is 1" is solved under the job's conflict/deadline
    budgets.  A model is patched back into original-input space before
    it is returned.

    ``"delay"`` (seconds) is a test-only knob that parks the job before
    solving, giving the staged-kill tests a deterministic slow loser.
    """
    delay = float(message.get("delay") or 0.0)
    if delay > 0.0:
        time.sleep(delay)
    cube = Cube.from_list(message.get("cube") or [])
    adoption = None
    try:
        aig = message.get("aig")
        ref = message.get("aig_ref")
        if aig is None and isinstance(ref, SegmentDescriptor):
            if ctx.registry is None:
                raise RuntimeError(
                    "received a segment descriptor without a registry"
                )
            adoption = ctx.registry.adopt(ref)
            aig = adopt_aig(adoption)
        if aig is None:
            raise ValueError("cube job carries neither 'aig' nor 'aig_ref'")
        with get_tracer().span(
            "cubes.job", category="cubes", cube=str(cube)
        ):
            cof = cofactor(aig, cube)
            reply = _solve_cofactor(
                cof,
                cube,
                conflict_limit=message.get("conflict_limit"),
                deadline=_solver_deadline(message.get("deadline_epoch")),
            )
        reply["cube"] = cube.as_list()
        reply["ands"] = cof.num_ands
        return reply
    finally:
        if adoption is not None:
            ctx.registry.release(adoption)


def _solve_cofactor(
    cof: Aig,
    cube: Cube,
    conflict_limit: Optional[int],
    deadline: Optional[float],
) -> Dict:
    """SAT-solve "some PO of ``cof`` is 1"; constants short-circuit."""
    live_pos = [po for po in cof.pos if po != CONST0]
    if not live_pos:
        return {"status": "unsat", "conflicts": 0}
    if any(lit_is_const(po) for po in live_pos):
        # A PO collapsed to constant-true under the cube: any pattern
        # extending the cube is a counter-example.
        pattern = patch_pattern([0] * cof.num_pis, cof, cube)
        return {"status": "sat", "cex": pattern, "conflicts": 0}
    solver = SatSolver()
    cnf = CnfBuilder(cof, solver)
    solver.add_clause([cnf.literal(po) for po in live_pos])
    status = solver.solve(
        conflict_limit=conflict_limit, deadline=deadline
    )
    if status is SolveStatus.SAT:
        pattern = patch_pattern(cnf.pi_pattern_from_model(), cof, cube)
        return {
            "status": "sat", "cex": pattern, "conflicts": solver.conflicts
        }
    if status is SolveStatus.UNSAT:
        return {"status": "unsat", "conflicts": solver.conflicts}
    return {"status": "unknown", "conflicts": solver.conflicts}


@dataclass
class CubeOutcome:
    """Aggregate verdict of one cube race.

    ``status`` is ``"equivalent"`` (the query is UNSAT — no difference
    exists), ``"nonequivalent"`` (a model was found, ``cex`` holds the
    patched pattern) or ``"unknown"`` (budgets ran out first).
    """

    status: str
    cex: Optional[List[int]] = None
    stats: Dict = field(default_factory=dict)

    @property
    def conclusive(self) -> bool:
        return self.status in ("equivalent", "nonequivalent")


class CubeRunner:
    """A warm pool of cube workers racing cofactor jobs to first winner.

    The runner keeps its :class:`ExecRuntime` and loop-mode workers
    alive across :meth:`solve` calls (consecutive hard POs of one
    residue reuse the warm pool); :meth:`close` tears everything down
    leak-free.  Usable as a context manager.
    """

    def __init__(
        self,
        num_workers: int = 3,
        start_method: Optional[str] = None,
        use_shm: Optional[bool] = None,
        trace: bool = False,
        terminate_grace: float = 1.0,
    ) -> None:
        self.num_workers = max(1, num_workers)
        self._start_method = start_method
        self._use_shm = use_shm
        self._trace = trace
        self._terminate_grace = terminate_grace
        self._runtime: Optional[ExecRuntime] = None
        self._workers: List[WorkerHandle] = []
        self.races = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "CubeRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_workers(self) -> ExecRuntime:
        """Open the runtime on first use; revive workers killed as
        losers of an earlier race."""
        if self._runtime is None:
            self._runtime = ExecRuntime(
                start_method=self._start_method,
                use_shm=self._use_shm,
                trace=self._trace,
                terminate_grace=self._terminate_grace,
                flight=True,
                flight_capacity=128,
            ).open()
            self._workers = [
                WorkerHandle(index=i, name=f"cube-w{i}")
                for i in range(self.num_workers)
            ]
            for worker in self._workers:
                self._runtime.spawn(
                    worker,
                    run_cube_job,
                    mode="loop",
                    trace_name=f"worker:cube{worker.index}",
                )
        else:
            for worker in self._workers:
                if not worker.alive:
                    self._runtime.respawn(
                        worker,
                        run_cube_job,
                        trace_name=f"worker:cube{worker.index}",
                    )
        return self._runtime

    def close(self) -> None:
        """Stop every worker (sentinel first, staged kill after) and
        tear the runtime down (idempotent)."""
        runtime = self._runtime
        if runtime is None:
            return
        for worker in self._workers:
            if worker.inbox is not None:
                try:
                    worker.inbox.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + max(0.5, self._terminate_grace)
        while time.monotonic() < deadline and any(
            w.alive for w in self._workers
        ):
            runtime.poll(0.05)
        for worker in self._workers:
            runtime.stop(worker)
            if worker.inbox is not None:
                worker.inbox.close()
                worker.inbox.cancel_join_thread()
                worker.inbox = None
        runtime.close()
        self._runtime = None
        self._workers = []

    # ------------------------------------------------------------------
    # The race
    # ------------------------------------------------------------------

    def solve(
        self,
        aig: Aig,
        cubes: Sequence[Cube],
        conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
        include_monolith: bool = True,
        cube_delay: float = 0.0,
    ) -> CubeOutcome:
        """Race the cubes (plus the monolith) on the warm pool.

        ``deadline`` is absolute ``time.perf_counter()`` seconds, the
        convention of every solver budget in the repo.  ``cube_delay``
        parks each *cube* job before it solves — the deterministic slow
        loser the staged-kill tests rely on; production callers leave
        it 0.
        """
        runtime = self._ensure_workers()
        tracer = get_tracer()
        metrics = tracer.metrics
        cubes = [c for c in cubes if not c.is_monolith]
        metrics.counter_add("cubes.split", len(cubes))
        metrics.counter_add("cubes.races")
        metrics.counter_add("cubes.cancelled", 0)
        self.races += 1
        deadline_epoch = (
            time.time() + (deadline - time.perf_counter())
            if deadline is not None
            else None
        )
        descriptor = runtime.publish_aig(aig)
        base: Dict = {}
        if descriptor is not None:
            base["aig_ref"] = descriptor
        else:
            base["aig"] = aig
        if conflict_limit is not None:
            base["conflict_limit"] = conflict_limit
        if deadline_epoch is not None:
            base["deadline_epoch"] = deadline_epoch

        group = CancelGroup()
        board = JobBoard()
        jobs: Dict[int, Dict] = {}

        def _queue(job_id: int, label: str, payload: Dict) -> None:
            token = group.new_token(label)
            board.add(job_id, payload, token=token)
            jobs[job_id] = {"label": label, "token": token, "status": ""}

        next_id = 0
        if include_monolith or not cubes:
            payload = dict(base)
            payload["meta"] = {"cube": MONOLITH}
            _queue(next_id, MONOLITH, payload)
            next_id += 1
        for cube in cubes:
            payload = dict(base)
            payload["cube"] = cube.as_list()
            payload["meta"] = {"cube": str(cube)}
            if cube_delay > 0.0:
                payload["delay"] = cube_delay
            _queue(next_id, str(cube), payload)
            next_id += 1

        stats: Dict = {
            "cubes": len(cubes),
            "jobs": len(jobs),
            "unsat_cubes": 0,
            "cancelled": 0,
            "killed": 0,
            "winner": None,
        }
        start = time.perf_counter()
        outcome: Optional[CubeOutcome] = None
        with tracer.span(
            "cubes.race", category="cubes",
            cubes=len(cubes), jobs=len(jobs),
        ) as span:
            try:
                outcome = self._race(
                    runtime, board, group, jobs, stats, deadline
                )
            finally:
                stats["seconds"] = time.perf_counter() - start
                span.set("winner", stats["winner"] or "-")
                span.set("status", outcome.status if outcome else "unknown")
                if descriptor is not None and runtime.registry is not None:
                    runtime.registry.unpublish(descriptor)
        outcome.stats = stats
        return outcome

    # ------------------------------------------------------------------

    def _race(
        self,
        runtime: ExecRuntime,
        board: JobBoard,
        group: CancelGroup,
        jobs: Dict[int, Dict],
        stats: Dict,
        deadline: Optional[float],
    ) -> CubeOutcome:
        """Dispatch, absorb, settle; first conclusive sibling wins."""
        metrics = get_tracer().metrics
        num_cubes = stats["cubes"]
        monolith_queued = any(
            entry["label"] == MONOLITH for entry in jobs.values()
        )
        pending = set(jobs)
        winner: Optional[CubeOutcome] = None
        unknown_seen = False

        def dispatch() -> None:
            for worker in self._workers:
                if worker.assigned or not worker.alive:
                    continue
                job = board.take(worker.index)
                if job is None:
                    return
                worker.assigned.append(job.job_id)
                message = dict(job.payload)
                message["job"] = job.job_id
                try:
                    worker.inbox.put(message)
                except (OSError, ValueError):
                    worker.assigned.clear()
                    board.add(job.job_id, job.payload, token=job.token)

        def cancel_losers(winner_id: int, reason: str) -> None:
            winner_token = jobs[winner_id]["token"]
            group.cancel_rest(winner_token, reason=reason)
            revoked = board.revoke_cancelled()
            for job in revoked:
                pending.discard(job.job_id)
            stats["cancelled"] += len(revoked)
            for worker in self._workers:
                head = worker.assigned[0] if worker.assigned else None
                if head is None or head == winner_id or head not in pending:
                    continue
                runtime.stop(worker, reason)
                worker.assigned.clear()
                pending.discard(head)
                stats["cancelled"] += 1
                stats["killed"] += 1
            metrics.counter_add("cubes.cancelled", stats["cancelled"])

        dispatch()
        while pending:
            if deadline is not None and time.perf_counter() > deadline:
                for worker in self._workers:
                    if worker.assigned:
                        runtime.stop(worker, REASON_TIMEOUT)
                        worker.assigned.clear()
                stats["winner"] = None
                stats["timeout"] = True
                return CubeOutcome("unknown")
            message = runtime.poll(0.05)
            if message is None:
                # A worker that died mid-job (loser kill races with a
                # crash) would stall the race; treat its job as unknown.
                for worker in self._workers:
                    if worker.assigned and not worker.alive:
                        job_id = worker.assigned[0]
                        worker.assigned.clear()
                        if job_id in pending:
                            pending.discard(job_id)
                            unknown_seen = True
                dispatch()
                continue
            runtime.fold_flight(message)
            if message.get("kind") == "bye":
                runtime.merge_trace(message)
                continue
            job_id = message.get("job")
            index = message.get("index")
            for worker in self._workers:
                if worker.index == index and worker.assigned:
                    if worker.assigned[0] == job_id:
                        worker.assigned.clear()
                        worker.jobs_done += 1
            if job_id not in pending:
                dispatch()
                continue
            pending.discard(job_id)
            entry = jobs[job_id]
            status = message.get("status")
            entry["status"] = status
            if status == "sat":
                stats["winner"] = entry["label"]
                winner = CubeOutcome("nonequivalent", cex=message.get("cex"))
                cancel_losers(job_id, "cancelled")
                break
            if status == "unsat":
                if entry["label"] == MONOLITH:
                    stats["winner"] = MONOLITH
                    winner = CubeOutcome("equivalent")
                    cancel_losers(job_id, "cancelled")
                    break
                stats["unsat_cubes"] += 1
                if stats["unsat_cubes"] == num_cubes and num_cubes > 0:
                    stats["winner"] = "all-cubes"
                    winner = CubeOutcome("equivalent")
                    cancel_losers(job_id, "cancelled")
                    break
            else:
                # unknown / error: this sibling is dry, the race goes on.
                unknown_seen = True
                if entry["label"] == MONOLITH:
                    monolith_queued = False
            dispatch()
        if winner is not None:
            return winner
        if not unknown_seen and num_cubes == 0 and not monolith_queued:
            return CubeOutcome("unknown")
        if stats["unsat_cubes"] == num_cubes and num_cubes > 0:
            stats["winner"] = "all-cubes"
            return CubeOutcome("equivalent")
        return CubeOutcome("unknown")
