"""repro — simulation-based parallel sweeping for CEC.

A from-scratch Python reproduction of *"Simulation-based Parallel
Sweeping: A New Perspective on Combinational Equivalence Checking"*
(Liu & Young, DAC 2025).

Quickstart
----------
>>> from repro import multiplier, resyn2, check_equivalence
>>> original = multiplier(6)
>>> optimized = resyn2(original)
>>> result = check_equivalence(original, optimized)
>>> result.status.value
'equivalent'

The main entry points:

- :func:`check_equivalence` — the paper's full flow (simulation engine +
  SAT residue checking);
- :class:`SimSweepEngine` — the simulation-based engine alone;
- :class:`SatSweepChecker` — the SAT sweeping baseline (ABC ``&cec``
  substitute);
- :class:`PortfolioChecker` — the multi-engine commercial-tool
  substitute;
- :mod:`repro.bench` — benchmark generators and the Table II / Fig. 6 /
  Fig. 7 harness.
"""

from repro.aig import (
    Aig,
    AigBuilder,
    build_miter,
    double,
    read_aiger,
    write_aiger,
)
from repro.bdd import BddChecker, BddManager, BddSweepChecker
from repro.bench.generators import (
    adder,
    control_circuit,
    hyp,
    log2,
    multiplier,
    sin_cordic,
    sqrt,
    square,
    voter,
)
from repro.portfolio import (
    CombinedChecker,
    ParallelPortfolioChecker,
    PortfolioChecker,
    PortfolioError,
)
from repro.sat import SatSolver, SatSweepChecker
from repro.sweep import (
    CecResult,
    CecStatus,
    EngineConfig,
    SimSweepEngine,
)
from repro.map import lut_network_to_aig, map_luts
from repro.synth import balance, cut_rewrite, fraig, fraig_sim, resyn2

__version__ = "1.0.0"

__all__ = [
    "Aig",
    "AigBuilder",
    "BddChecker",
    "BddManager",
    "BddSweepChecker",
    "CecResult",
    "CecStatus",
    "CombinedChecker",
    "EngineConfig",
    "ParallelPortfolioChecker",
    "PortfolioChecker",
    "PortfolioError",
    "SatSolver",
    "SatSweepChecker",
    "SimSweepEngine",
    "adder",
    "balance",
    "build_miter",
    "check_equivalence",
    "control_circuit",
    "cut_rewrite",
    "double",
    "fraig",
    "fraig_sim",
    "hyp",
    "log2",
    "lut_network_to_aig",
    "map_luts",
    "multiplier",
    "read_aiger",
    "resyn2",
    "sin_cordic",
    "sqrt",
    "square",
    "voter",
    "write_aiger",
]


def check_equivalence(aig_a, aig_b, config=None):
    """Check two networks with the paper's combined flow.

    Runs the simulation-based sweeping engine and finishes any residual
    miter with SAT sweeping.  Returns a
    :class:`~repro.sweep.engine.CecResult` whose ``status`` is
    EQUIVALENT, NONEQUIVALENT (with a ``cex`` PI pattern) or — only if
    budgets were exhausted — UNDECIDED.
    """
    return CombinedChecker(config=config).check(aig_a, aig_b)
